// Package atomiceng implements the paper's "Atomic" baseline: operations
// apply immediately with atomic instructions and no other concurrency
// control (§8.2: "Atomic uses an atomic increment instruction with no
// other concurrency control. Atomic represents an upper bound for locking
// schemes.")
//
// The engine provides per-operation atomicity only: there is no
// transaction isolation, no aborts, and multi-record transactions are not
// serializable. It exists purely as a performance upper bound for the
// INCR microbenchmarks.
package atomiceng

import (
	"time"

	"doppel/internal/engine"
	"doppel/internal/metrics"
	"doppel/internal/store"
)

// Engine is the Atomic baseline over a shared store.
type Engine struct {
	st      *store.Store
	workers []workerState
}

type workerState struct {
	stats *metrics.TxnStats
	tx    Tx
	_     [40]byte // avoid false sharing
}

// New returns an Atomic engine with the given worker count over st.
func New(st *store.Store, workers int) *Engine {
	if workers < 1 {
		workers = 1
	}
	e := &Engine{st: st, workers: make([]workerState, workers)}
	for i := range e.workers {
		e.workers[i].stats = metrics.NewTxnStats()
	}
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "atomic" }

// Workers implements engine.Engine.
func (e *Engine) Workers() int { return len(e.workers) }

// Poll implements engine.Engine; Atomic has no background duties.
func (e *Engine) Poll(w int) {}

// Stop implements engine.Engine.
func (e *Engine) Stop() {}

// WorkerStats implements engine.Engine.
func (e *Engine) WorkerStats(w int) *metrics.TxnStats { return e.workers[w].stats }

// Store returns the engine's backing store (for preloading).
func (e *Engine) Store() *store.Store { return e.st }

// Attempt implements engine.Engine. Operations have already applied when
// fn returns, so the outcome is Committed unless fn itself failed; a user
// error may leave partial effects (this engine provides no isolation).
func (e *Engine) Attempt(w int, fn engine.TxFunc, submitNanos int64) (engine.Outcome, error) {
	ws := &e.workers[w]
	tx := &ws.tx
	tx.eng, tx.w, tx.wrote = e, w, false
	if err := fn(tx); err != nil {
		ws.stats.Aborted++
		return engine.UserAbort, err
	}
	ws.stats.Committed++
	lat := time.Now().UnixNano() - submitNanos
	if tx.wrote {
		ws.stats.WriteLatency.Record(lat)
	} else {
		ws.stats.ReadLatency.Record(lat)
	}
	return engine.Committed, nil
}

// Tx applies every operation immediately with a CAS loop on the record's
// value pointer.
type Tx struct {
	eng   *Engine
	w     int
	wrote bool
}

// WorkerID implements engine.Tx.
func (t *Tx) WorkerID() int { return t.w }

// apply performs op on key's record via compare-and-swap.
func (t *Tx) apply(key string, op store.Op) error {
	rec, _ := t.eng.st.GetOrCreate(key)
	t.wrote = true
	for {
		old := rec.Value()
		nv, err := store.Apply(old, op)
		if err != nil {
			return err
		}
		if rec.CasValue(old, nv) {
			return nil
		}
	}
}

// Get implements engine.Tx: a plain atomic load.
func (t *Tx) Get(key string) (*store.Value, error) {
	rec, _ := t.eng.st.GetOrCreate(key)
	return rec.Value(), nil
}

// GetForUpdate implements engine.Tx; identical to Get (no locking here).
func (t *Tx) GetForUpdate(key string) (*store.Value, error) { return t.Get(key) }

// GetInt implements engine.Tx.
func (t *Tx) GetInt(key string) (int64, error) {
	v, err := t.Get(key)
	if err != nil {
		return 0, err
	}
	return v.AsInt()
}

// GetIntForUpdate implements engine.Tx.
func (t *Tx) GetIntForUpdate(key string) (int64, error) { return t.GetInt(key) }

// GetBytes implements engine.Tx.
func (t *Tx) GetBytes(key string) ([]byte, error) {
	v, err := t.Get(key)
	if err != nil {
		return nil, err
	}
	return v.AsBytes()
}

// GetTuple implements engine.Tx.
func (t *Tx) GetTuple(key string) (store.Tuple, bool, error) {
	v, err := t.Get(key)
	if err != nil {
		return store.Tuple{}, false, err
	}
	return v.AsTuple()
}

// GetTopK implements engine.Tx.
func (t *Tx) GetTopK(key string) ([]store.TopKEntry, error) {
	v, err := t.Get(key)
	if err != nil {
		return nil, err
	}
	tk, err := v.AsTopK()
	if err != nil {
		return nil, err
	}
	return tk.Entries(), nil
}

// Put implements engine.Tx.
func (t *Tx) Put(key string, v *store.Value) error {
	return t.apply(key, store.Op{Kind: store.OpPut, Val: v})
}

// PutInt implements engine.Tx.
func (t *Tx) PutInt(key string, n int64) error { return t.Put(key, store.IntValue(n)) }

// PutBytes implements engine.Tx.
func (t *Tx) PutBytes(key string, b []byte) error { return t.Put(key, store.BytesValue(b)) }

// Add implements engine.Tx.
func (t *Tx) Add(key string, n int64) error {
	return t.apply(key, store.Op{Kind: store.OpAdd, Int: n})
}

// Max implements engine.Tx.
func (t *Tx) Max(key string, n int64) error {
	return t.apply(key, store.Op{Kind: store.OpMax, Int: n})
}

// Min implements engine.Tx.
func (t *Tx) Min(key string, n int64) error {
	return t.apply(key, store.Op{Kind: store.OpMin, Int: n})
}

// Mult implements engine.Tx.
func (t *Tx) Mult(key string, n int64) error {
	return t.apply(key, store.Op{Kind: store.OpMult, Int: n})
}

// OPut implements engine.Tx.
func (t *Tx) OPut(key string, order store.Order, data []byte) error {
	return t.apply(key, store.Op{Kind: store.OpOPut, Tuple: store.Tuple{
		Order: order, CoreID: int32(t.w), Data: data,
	}})
}

// TopKInsert implements engine.Tx.
func (t *Tx) TopKInsert(key string, order int64, data []byte, k int) error {
	return t.apply(key, store.Op{Kind: store.OpTopKInsert, K: k, Entry: store.TopKEntry{
		Order: order, CoreID: int32(t.w), Data: data,
	}})
}

var _ engine.Tx = (*Tx)(nil)
var _ engine.Engine = (*Engine)(nil)
