package router

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"doppel/internal/engine"
	"doppel/internal/store"
)

// errApplyStale reports a fence-protocol invariant violation: a fenced
// record's value changed between prepare validation and the commit-stage
// apply. With fences on, this cannot happen by construction — every
// committer and the reconciliation-aware prepare yield to the fence — so
// a sighting is a bug, counted in CrossShardApplyLost.
var errApplyStale = errors.New("router: fenced record changed between prepare and apply")

// crossShardBackoff caps the retry backoff between 2PC rounds.
const crossShardBackoff = time.Millisecond

// gatherRead is one entry of the cross-shard read set: the value the
// body observed, pre-overlay, exactly as prepare must revalidate it.
type gatherRead struct {
	shard int
	key   string
	val   *store.Value
}

// gatherWrite is one buffered write, tagged with its owning shard.
type gatherWrite struct {
	shard int
	key   string
	op    store.Op
}

// gatherTx implements engine.Tx for the gather stage of the cross-shard
// protocol: reads dispatch to the owning shard, writes buffer. It is
// not concurrency-safe; each cross-shard transaction owns one.
type gatherTx struct {
	r      *Router
	ctx    context.Context
	reads  []gatherRead
	writes []gatherWrite
	// readIdx indexes reads by key so load is O(1) per access instead of
	// a linear scan (which made large gathers O(n²)).
	readIdx map[string]int
	// infra is the first shard-dispatch failure (shard closed, context
	// cancelled). It poisons the rest of the gather run and is what the
	// caller gets, even if the body swallows the error it was handed.
	infra error

	// Per-shard grouping scratch, rebuilt by group() each commit round
	// and reused across rounds so retries stay allocation-bounded:
	// shardIDs lists the touched shards ascending; readsBy/writesBy hold
	// the read/write sets regrouped by shard, delimited by the offset
	// arrays (readOff/writeOff have len(shardIDs)+1 entries).
	shardIDs []int
	readsBy  []gatherRead
	writesBy []gatherWrite
	readOff  []int
	writeOff []int
}

func (g *gatherTx) reset() {
	g.reads = g.reads[:0]
	g.writes = g.writes[:0]
	if g.readIdx == nil {
		g.readIdx = make(map[string]int, 8)
	} else {
		clear(g.readIdx)
	}
	g.infra = nil
}

// load returns key's value as this transaction sees it: the gathered
// shard value (fetched on first access, then reused) with this
// transaction's own buffered writes overlaid, so reads-after-writes
// behave as in a single-shard transaction.
func (g *gatherTx) load(key string) (*store.Value, error) {
	if g.infra != nil {
		return nil, g.infra
	}
	var base *store.Value
	if i, ok := g.readIdx[key]; ok {
		base = g.reads[i].val
	} else {
		shard := g.r.ShardOf(key)
		var v *store.Value
		err := g.r.shards[shard].ExecContext(g.ctx, func(tx engine.Tx) error {
			got, err := tx.Get(key)
			v = got
			return err
		})
		if err != nil {
			g.infra = err
			return nil, err
		}
		g.readIdx[key] = len(g.reads)
		g.reads = append(g.reads, gatherRead{shard: shard, key: key, val: v})
		base = v
	}
	for i := range g.writes {
		if g.writes[i].key == key {
			nv, err := store.Apply(base, g.writes[i].op)
			if err != nil {
				return nil, err
			}
			base = nv
		}
	}
	return base, nil
}

// update buffers a splittable operation. It reads the target first —
// recording it in the read set — so type mismatches surface here, at
// gather, the way the embedded joined-phase path surfaces them at
// execution rather than commit. That read is also what makes the
// commit-stage replay type-safe by construction: prepare revalidates
// the value the operation was type-checked against, so a validated
// round cannot hit an Apply type error at apply time.
func (g *gatherTx) update(key string, op store.Op) error {
	cur, err := g.load(key)
	if err != nil {
		return err
	}
	if _, err := store.Apply(cur, op); err != nil {
		return err
	}
	g.writes = append(g.writes, gatherWrite{shard: g.r.ShardOf(key), key: key, op: op})
	return nil
}

func (g *gatherTx) Get(key string) (*store.Value, error)          { return g.load(key) }
func (g *gatherTx) GetForUpdate(key string) (*store.Value, error) { return g.load(key) }

func (g *gatherTx) GetInt(key string) (int64, error) {
	v, err := g.load(key)
	if err != nil {
		return 0, err
	}
	return v.AsInt()
}

func (g *gatherTx) GetIntForUpdate(key string) (int64, error) { return g.GetInt(key) }

func (g *gatherTx) GetBytes(key string) ([]byte, error) {
	v, err := g.load(key)
	if err != nil {
		return nil, err
	}
	return v.AsBytes()
}

func (g *gatherTx) GetTuple(key string) (store.Tuple, bool, error) {
	v, err := g.load(key)
	if err != nil {
		return store.Tuple{}, false, err
	}
	return v.AsTuple()
}

func (g *gatherTx) GetTopK(key string) ([]store.TopKEntry, error) {
	v, err := g.load(key)
	if err != nil {
		return nil, err
	}
	t, err := v.AsTopK()
	if err != nil {
		return nil, err
	}
	return t.Entries(), nil
}

func (g *gatherTx) Put(key string, v *store.Value) error {
	if g.infra != nil {
		return g.infra
	}
	g.writes = append(g.writes, gatherWrite{
		shard: g.r.ShardOf(key), key: key, op: store.Op{Kind: store.OpPut, Val: v},
	})
	return nil
}

func (g *gatherTx) PutInt(key string, n int64) error { return g.Put(key, store.IntValue(n)) }
func (g *gatherTx) PutBytes(key string, b []byte) error {
	return g.Put(key, store.BytesValue(b))
}

func (g *gatherTx) Add(key string, n int64) error {
	return g.update(key, store.Op{Kind: store.OpAdd, Int: n})
}

func (g *gatherTx) Max(key string, n int64) error {
	return g.update(key, store.Op{Kind: store.OpMax, Int: n})
}

func (g *gatherTx) Min(key string, n int64) error {
	return g.update(key, store.Op{Kind: store.OpMin, Int: n})
}

func (g *gatherTx) Mult(key string, n int64) error {
	return g.update(key, store.Op{Kind: store.OpMult, Int: n})
}

func (g *gatherTx) OPut(key string, order store.Order, data []byte) error {
	return g.update(key, store.Op{
		Kind:  store.OpOPut,
		Tuple: store.Tuple{Order: order, Data: data},
	})
}

func (g *gatherTx) TopKInsert(key string, order int64, data []byte, k int) error {
	return g.update(key, store.Op{
		Kind:  store.OpTopKInsert,
		Entry: store.TopKEntry{Order: order, Data: data},
		K:     k,
	})
}

// WorkerID returns -1: a cross-shard transaction has no single
// executing worker.
func (g *gatherTx) WorkerID() int { return -1 }

// group rebuilds the per-shard view of the gathered read and write sets
// into the reused scratch: shardIDs (sorted ascending — the lock
// acquisition order) plus the regrouped slices served by shardReads and
// shardWrites. One call per commit round replaces the per-stage
// slice-building the old prepare/apply did (three fresh allocations per
// shard per round).
func (g *gatherTx) group() {
	g.shardIDs = g.shardIDs[:0]
	addShard := func(s int) {
		for _, have := range g.shardIDs {
			if have == s {
				return
			}
		}
		g.shardIDs = append(g.shardIDs, s)
	}
	for i := range g.reads {
		addShard(g.reads[i].shard)
	}
	for i := range g.writes {
		addShard(g.writes[i].shard)
	}
	sort.Ints(g.shardIDs)
	g.readsBy = g.readsBy[:0]
	g.writesBy = g.writesBy[:0]
	g.readOff = g.readOff[:0]
	g.writeOff = g.writeOff[:0]
	for _, s := range g.shardIDs {
		g.readOff = append(g.readOff, len(g.readsBy))
		for i := range g.reads {
			if g.reads[i].shard == s {
				g.readsBy = append(g.readsBy, g.reads[i])
			}
		}
		g.writeOff = append(g.writeOff, len(g.writesBy))
		for i := range g.writes {
			if g.writes[i].shard == s {
				g.writesBy = append(g.writesBy, g.writes[i])
			}
		}
	}
	g.readOff = append(g.readOff, len(g.readsBy))
	g.writeOff = append(g.writeOff, len(g.writesBy))
}

// shardReads returns the reads on g.shardIDs[i], grouped by group().
// Writes within a shard keep their buffered order, which replay relies
// on for multiple operations against one key.
func (g *gatherTx) shardReads(i int) []gatherRead {
	return g.readsBy[g.readOff[i]:g.readOff[i+1]]
}

// shardWrites returns the writes on g.shardIDs[i], grouped by group().
func (g *gatherTx) shardWrites(i int) []gatherWrite {
	return g.writesBy[g.writeOff[i]:g.writeOff[i+1]]
}

// execCross runs fn through the cross-shard protocol: gather, then
// prepare+commit under the shard locks, retrying the whole round while
// prepare finds stale reads or foreign fences.
func (r *Router) execCross(ctx context.Context, fn engine.TxFunc) error {
	g := &gatherTx{r: r, ctx: ctx}
	backoff := 2 * time.Microsecond
	for {
		g.reset()
		err := fn(g)
		if g.infra != nil {
			return g.infra
		}
		if err != nil {
			r.stats.CrossShardAborts.Add(1)
			return err
		}
		committed, err := r.tryCommit(g)
		if err != nil {
			return err
		}
		if committed {
			r.stats.CrossShard.Add(1)
			return nil
		}
		r.stats.CrossShardRetries.Add(1)
		// Jittered backoff: sleep a uniform duration in [backoff/2,
		// backoff] so transactions contending on the same keys spread out
		// instead of retrying in lockstep at the 1ms cap forever.
		sleep := backoff/2 + time.Duration(rand.Int64N(int64(backoff/2)+1))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(sleep):
		}
		if backoff < crossShardBackoff {
			backoff *= 2
		}
	}
}

// tryCommit runs one prepare+commit round under the shard locks.
// committed=false with a nil error means prepare found a stale read, a
// foreign fence, or split data; the caller retries from gather.
func (r *Router) tryCommit(g *gatherTx) (committed bool, err error) {
	g.group()
	if len(g.shardIDs) == 0 {
		return true, nil // read nothing, wrote nothing
	}
	for _, s := range g.shardIDs {
		r.locks[s].Lock()
	}
	defer func() {
		for i := len(g.shardIDs) - 1; i >= 0; i-- {
			r.locks[g.shardIDs[i]].Unlock()
		}
	}()
	var tok uint64
	if !r.NoFences {
		tok = r.fenceSeq.Add(1)
		// Fences release on every exit — stale retry, infra error, and
		// commit alike — before the shard locks do, so a failed round can
		// never strand a key fenced.
		defer r.unfenceAll(g, tok)
	}
	ok, err := r.prepare(g, tok)
	if err != nil || !ok {
		return false, err
	}
	return true, r.apply(g, tok)
}

// prepare validates the round under the shard commit locks. With fences
// on it installs the per-key commit fence on every touched record
// first, then revalidates each gathered read against the record's
// current value, taken under the record's commit lock. The lock is what
// orders fence publication against in-flight single-shard committers:
// a committer checks fences while holding (writes) or validating
// (reads) the same records, so either it finished first — and the
// snapshot read here sees its installed value, failing validation — or
// the fence is visible to it and it yields. After a read validates with
// its fence up, the record cannot change until apply: every write path
// (OCC committers, routed transactions, drain replays) aborts on a
// foreign fence.
//
// A key that is currently split data is treated as stale even if its
// global record matches: the record then lags the per-core slices, and
// reconciliation merges them without fence checks. The classifier never
// splits a fenced key, so retrying is enough to get ahead of it.
//
// prepare returns ok=false (retry from gather) for stale values,
// foreign fences, and split keys alike.
func (r *Router) prepare(g *gatherTx, tok uint64) (bool, error) {
	if tok != 0 {
		fenced := 0
		for si, s := range g.shardIDs {
			st := r.shards[s].Store()
			for _, rd := range g.shardReads(si) {
				rec, _ := st.GetOrCreate(rd.key)
				if !rec.Fence(tok) {
					return false, nil // another cross-shard commit owns it
				}
				fenced++
			}
			for _, wr := range g.shardWrites(si) {
				rec, _ := st.GetOrCreate(wr.key)
				if !rec.Fence(tok) {
					return false, nil
				}
				fenced++
			}
		}
		r.stats.FencedKeys.Add(uint64(fenced))
		for si, s := range g.shardIDs {
			sh := r.shards[s]
			for _, rd := range g.shardReads(si) {
				if sh.SplitActive(rd.key) {
					return false, nil
				}
			}
			for _, wr := range g.shardWrites(si) {
				if sh.SplitActive(wr.key) {
					return false, nil
				}
			}
		}
	}
	for si, s := range g.shardIDs {
		st := r.shards[s].Store()
		for _, rd := range g.shardReads(si) {
			rec, _ := st.GetOrCreate(rd.key)
			// Take the snapshot under the record lock rather than with
			// ReadConsistent: a committer that got past its fence check
			// holds this lock until its value is installed, and the
			// validation must see that value to vote stale.
			rec.Lock()
			cur := rec.Value()
			rec.Unlock()
			if !cur.Equal(rd.val) {
				return false, nil
			}
		}
	}
	return true, nil
}

// apply commits the buffered writes: one shard transaction per shard
// with writes, each revalidating that shard's gathered reads and
// replaying its writes — so per shard, validate+write is a single
// atomic OCC commit. The transaction identifies itself as the fence
// owner (engine.FenceTx), passing the fence checks everyone else aborts
// on. Shards the transaction only read are fully validated at prepare
// and stay fenced until every apply lands, which is what makes the
// whole commit atomic to observers: a reader that validates all fences
// clear either ran wholly before prepare or wholly after the last
// apply.
//
// Fan-out uses ExecAsync so shards apply concurrently. A revalidation
// mismatch inside apply is a fence-protocol invariant violation
// (errApplyStale), counted in CrossShardApplyLost.
func (r *Router) apply(g *gatherTx, tok uint64) error {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for si, s := range g.shardIDs {
		writes := g.shardWrites(si)
		if len(writes) == 0 {
			continue
		}
		reads := g.shardReads(si)
		shard := s
		wg.Add(1)
		r.shards[s].ExecAsync(func(tx engine.Tx) error {
			if tok != 0 {
				if ft, ok := tx.(engine.FenceTx); ok {
					ft.SetFenceToken(tok)
				}
			}
			for _, rd := range reads {
				cur, err := tx.Get(rd.key)
				if err != nil {
					return err
				}
				if !cur.Equal(rd.val) {
					return errApplyStale
				}
			}
			return replayOps(tx, writes)
		}, func(err error) {
			if err != nil {
				r.stats.CrossShardApplyLost.Add(1)
				mu.Lock()
				if first == nil {
					first = fmt.Errorf("router: cross-shard commit applied partially (shard %d failed): %w", shard, err)
				}
				mu.Unlock()
			}
			wg.Done()
		})
	}
	wg.Wait()
	return first
}

// unfenceAll releases this round's fences. Unfence is token-guarded, so
// keys the round never got to fence (an early stale exit) and keys
// fenced by another transaction are untouched, and double releases are
// no-ops — the caller may call it unconditionally on every exit path.
func (r *Router) unfenceAll(g *gatherTx, tok uint64) {
	for si, s := range g.shardIDs {
		st := r.shards[s].Store()
		for _, rd := range g.shardReads(si) {
			if rec := st.Get(rd.key); rec != nil {
				rec.Unfence(tok)
			}
		}
		for _, wr := range g.shardWrites(si) {
			if rec := st.Get(wr.key); rec != nil {
				rec.Unfence(tok)
			}
		}
	}
}

// replayOps applies buffered writes through the shard's own transaction
// interface, preserving operation kinds: an Add replays as Add, so the
// shard may split the record and the operation still commutes with
// concurrent single-shard traffic.
func replayOps(tx engine.Tx, writes []gatherWrite) error {
	for _, w := range writes {
		var err error
		switch w.op.Kind {
		case store.OpPut:
			err = tx.Put(w.key, w.op.Val)
		case store.OpAdd:
			err = tx.Add(w.key, w.op.Int)
		case store.OpMax:
			err = tx.Max(w.key, w.op.Int)
		case store.OpMin:
			err = tx.Min(w.key, w.op.Int)
		case store.OpMult:
			err = tx.Mult(w.key, w.op.Int)
		case store.OpOPut:
			err = tx.OPut(w.key, w.op.Tuple.Order, w.op.Tuple.Data)
		case store.OpTopKInsert:
			err = tx.TopKInsert(w.key, w.op.Entry.Order, w.op.Entry.Data, w.op.K)
		default:
			err = fmt.Errorf("router: cannot replay op kind %v", w.op.Kind)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
