package router

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"doppel/internal/engine"
	"doppel/internal/store"
)

// errPrepareStale vetoes a prepare: a value read during gather changed
// before the shard locks were taken. The round retries from gather.
var errPrepareStale = errors.New("router: prepare validation failed")

// crossShardBackoff caps the retry backoff between 2PC rounds.
const crossShardBackoff = time.Millisecond

// gatherRead is one entry of the cross-shard read set: the value the
// body observed, pre-overlay, exactly as prepare must revalidate it.
type gatherRead struct {
	shard int
	key   string
	val   *store.Value
}

// gatherWrite is one buffered write, tagged with its owning shard.
type gatherWrite struct {
	shard int
	key   string
	op    store.Op
}

// gatherTx implements engine.Tx for the gather stage of the cross-shard
// protocol: reads dispatch to the owning shard, writes buffer. It is
// not concurrency-safe; each cross-shard transaction owns one.
type gatherTx struct {
	r      *Router
	ctx    context.Context
	reads  []gatherRead
	writes []gatherWrite
	// infra is the first shard-dispatch failure (shard closed, context
	// cancelled). It poisons the rest of the gather run and is what the
	// caller gets, even if the body swallows the error it was handed.
	infra error
}

func (g *gatherTx) reset() {
	g.reads = g.reads[:0]
	g.writes = g.writes[:0]
	g.infra = nil
}

// load returns key's value as this transaction sees it: the gathered
// shard value (fetched on first access, then reused) with this
// transaction's own buffered writes overlaid, so reads-after-writes
// behave as in a single-shard transaction.
func (g *gatherTx) load(key string) (*store.Value, error) {
	if g.infra != nil {
		return nil, g.infra
	}
	var base *store.Value
	found := false
	for i := range g.reads {
		if g.reads[i].key == key {
			base, found = g.reads[i].val, true
			break
		}
	}
	if !found {
		shard := g.r.ShardOf(key)
		var v *store.Value
		err := g.r.shards[shard].ExecContext(g.ctx, func(tx engine.Tx) error {
			got, err := tx.Get(key)
			v = got
			return err
		})
		if err != nil {
			g.infra = err
			return nil, err
		}
		g.reads = append(g.reads, gatherRead{shard: shard, key: key, val: v})
		base = v
	}
	for i := range g.writes {
		if g.writes[i].key == key {
			nv, err := store.Apply(base, g.writes[i].op)
			if err != nil {
				return nil, err
			}
			base = nv
		}
	}
	return base, nil
}

// update buffers a splittable operation. It reads the target first —
// recording it in the read set — so type mismatches surface here, at
// gather, the way the embedded joined-phase path surfaces them at
// execution rather than commit.
func (g *gatherTx) update(key string, op store.Op) error {
	cur, err := g.load(key)
	if err != nil {
		return err
	}
	if _, err := store.Apply(cur, op); err != nil {
		return err
	}
	g.writes = append(g.writes, gatherWrite{shard: g.r.ShardOf(key), key: key, op: op})
	return nil
}

func (g *gatherTx) Get(key string) (*store.Value, error)          { return g.load(key) }
func (g *gatherTx) GetForUpdate(key string) (*store.Value, error) { return g.load(key) }

func (g *gatherTx) GetInt(key string) (int64, error) {
	v, err := g.load(key)
	if err != nil {
		return 0, err
	}
	return v.AsInt()
}

func (g *gatherTx) GetIntForUpdate(key string) (int64, error) { return g.GetInt(key) }

func (g *gatherTx) GetBytes(key string) ([]byte, error) {
	v, err := g.load(key)
	if err != nil {
		return nil, err
	}
	return v.AsBytes()
}

func (g *gatherTx) GetTuple(key string) (store.Tuple, bool, error) {
	v, err := g.load(key)
	if err != nil {
		return store.Tuple{}, false, err
	}
	return v.AsTuple()
}

func (g *gatherTx) GetTopK(key string) ([]store.TopKEntry, error) {
	v, err := g.load(key)
	if err != nil {
		return nil, err
	}
	t, err := v.AsTopK()
	if err != nil {
		return nil, err
	}
	return t.Entries(), nil
}

func (g *gatherTx) Put(key string, v *store.Value) error {
	if g.infra != nil {
		return g.infra
	}
	g.writes = append(g.writes, gatherWrite{
		shard: g.r.ShardOf(key), key: key, op: store.Op{Kind: store.OpPut, Val: v},
	})
	return nil
}

func (g *gatherTx) PutInt(key string, n int64) error { return g.Put(key, store.IntValue(n)) }
func (g *gatherTx) PutBytes(key string, b []byte) error {
	return g.Put(key, store.BytesValue(b))
}

func (g *gatherTx) Add(key string, n int64) error {
	return g.update(key, store.Op{Kind: store.OpAdd, Int: n})
}

func (g *gatherTx) Max(key string, n int64) error {
	return g.update(key, store.Op{Kind: store.OpMax, Int: n})
}

func (g *gatherTx) Min(key string, n int64) error {
	return g.update(key, store.Op{Kind: store.OpMin, Int: n})
}

func (g *gatherTx) Mult(key string, n int64) error {
	return g.update(key, store.Op{Kind: store.OpMult, Int: n})
}

func (g *gatherTx) OPut(key string, order store.Order, data []byte) error {
	return g.update(key, store.Op{
		Kind:  store.OpOPut,
		Tuple: store.Tuple{Order: order, Data: data},
	})
}

func (g *gatherTx) TopKInsert(key string, order int64, data []byte, k int) error {
	return g.update(key, store.Op{
		Kind:  store.OpTopKInsert,
		Entry: store.TopKEntry{Order: order, Data: data},
		K:     k,
	})
}

// WorkerID returns -1: a cross-shard transaction has no single
// executing worker.
func (g *gatherTx) WorkerID() int { return -1 }

// touchedShards returns the sorted, deduplicated shard IDs the
// transaction read or wrote — the lock acquisition order.
func (g *gatherTx) touchedShards() []int {
	seen := make(map[int]bool, 4)
	for i := range g.reads {
		seen[g.reads[i].shard] = true
	}
	for i := range g.writes {
		seen[g.writes[i].shard] = true
	}
	shards := make([]int, 0, len(seen))
	for s := range seen {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	return shards
}

// execCross runs fn through the cross-shard protocol: gather, then
// prepare+commit under the shard locks, retrying the whole round while
// prepare finds stale reads.
func (r *Router) execCross(ctx context.Context, fn engine.TxFunc) error {
	g := &gatherTx{r: r, ctx: ctx}
	backoff := 2 * time.Microsecond
	for {
		g.reset()
		err := fn(g)
		if g.infra != nil {
			return g.infra
		}
		if err != nil {
			r.stats.CrossShardAborts.Add(1)
			return err
		}
		committed, err := r.tryCommit(g)
		if err != nil {
			return err
		}
		if committed {
			r.stats.CrossShard.Add(1)
			return nil
		}
		r.stats.CrossShardRetries.Add(1)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < crossShardBackoff {
			backoff *= 2
		}
	}
}

// tryCommit runs one prepare+commit round under the shard locks.
// committed=false with a nil error means prepare found a stale read;
// the caller retries from gather.
func (r *Router) tryCommit(g *gatherTx) (committed bool, err error) {
	shards := g.touchedShards()
	if len(shards) == 0 {
		return true, nil // read nothing, wrote nothing
	}
	for _, s := range shards {
		r.locks[s].Lock()
	}
	defer func() {
		for i := len(shards) - 1; i >= 0; i-- {
			r.locks[shards[i]].Unlock()
		}
	}()
	ok, err := r.prepare(g)
	if err != nil || !ok {
		return false, err
	}
	return true, r.apply(g)
}

// prepare revalidates the read set: one transaction per shard with
// reads, each voting yes only if every gathered value is still current.
// Fan-out uses ExecAsync so shards validate concurrently.
func (r *Router) prepare(g *gatherTx) (bool, error) {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		stale bool
		infra error
	)
	for _, s := range g.touchedShards() {
		reads := readsFor(g, s)
		if len(reads) == 0 {
			continue
		}
		wg.Add(1)
		r.shards[s].ExecAsync(func(tx engine.Tx) error {
			for _, rd := range reads {
				cur, err := tx.Get(rd.key)
				if err != nil {
					return err
				}
				if !cur.Equal(rd.val) {
					return errPrepareStale
				}
			}
			return nil
		}, func(err error) {
			if err != nil {
				mu.Lock()
				if errors.Is(err, errPrepareStale) {
					stale = true
				} else if infra == nil {
					infra = err
				}
				mu.Unlock()
			}
			wg.Done()
		})
	}
	wg.Wait()
	if infra != nil {
		return false, infra
	}
	return !stale, nil
}

// apply fans the buffered writes out, one transaction per touched
// shard, replaying each write as its original operation so splittable
// operations land commutatively.
func (r *Router) apply(g *gatherTx) error {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for _, s := range g.touchedShards() {
		writes := writesFor(g, s)
		if len(writes) == 0 {
			continue
		}
		shard := s
		wg.Add(1)
		r.shards[s].ExecAsync(func(tx engine.Tx) error {
			return replayOps(tx, writes)
		}, func(err error) {
			if err != nil {
				r.stats.CrossShardApplyLost.Add(1)
				mu.Lock()
				if first == nil {
					first = fmt.Errorf("router: cross-shard commit applied partially (shard %d failed): %w", shard, err)
				}
				mu.Unlock()
			}
			wg.Done()
		})
	}
	wg.Wait()
	return first
}

func readsFor(g *gatherTx, shard int) []gatherRead {
	var out []gatherRead
	for i := range g.reads {
		if g.reads[i].shard == shard {
			out = append(out, g.reads[i])
		}
	}
	return out
}

func writesFor(g *gatherTx, shard int) []gatherWrite {
	var out []gatherWrite
	for i := range g.writes {
		if g.writes[i].shard == shard {
			out = append(out, g.writes[i])
		}
	}
	return out
}

// replayOps applies buffered writes through the shard's own transaction
// interface, preserving operation kinds: an Add replays as Add, so the
// shard may split the record and the operation still commutes with
// concurrent single-shard traffic.
func replayOps(tx engine.Tx, writes []gatherWrite) error {
	for _, w := range writes {
		var err error
		switch w.op.Kind {
		case store.OpPut:
			err = tx.Put(w.key, w.op.Val)
		case store.OpAdd:
			err = tx.Add(w.key, w.op.Int)
		case store.OpMax:
			err = tx.Max(w.key, w.op.Int)
		case store.OpMin:
			err = tx.Min(w.key, w.op.Int)
		case store.OpMult:
			err = tx.Mult(w.key, w.op.Int)
		case store.OpOPut:
			err = tx.OPut(w.key, w.op.Tuple.Order, w.op.Tuple.Data)
		case store.OpTopKInsert:
			err = tx.TopKInsert(w.key, w.op.Entry.Order, w.op.Entry.Data, w.op.K)
		default:
			err = fmt.Errorf("router: cannot replay op kind %v", w.op.Kind)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
