package router

import (
	"errors"

	"doppel/internal/engine"
	"doppel/internal/store"
)

// routedCall is the pooled per-transaction routing frame. Its run
// closure and checkTx are built once, when the frame is first pooled,
// so the single-shard fast path performs no allocation per transaction:
// route() only rewrites fields of an existing frame.
//
// Ownership: between route() and the shard's completion callback the
// executing worker may read and write the frame (through run/check), so
// the submitter must not touch it until the shard reports completion —
// and must abandon it entirely if it stops waiting early (see
// Router.ExecContext's cancellation path).
type routedCall struct {
	r     *Router
	fn    engine.TxFunc
	shard int
	probe probeTx
	check checkTx
	run   engine.TxFunc
}

func newRoutedCall(r *Router) *routedCall {
	rc := &routedCall{r: r}
	rc.run = func(tx engine.Tx) error {
		rc.check.reset(rc.r, tx, rc.shard)
		err := rc.fn(&rc.check)
		if rc.check.foreign {
			return errCrossShard
		}
		return err
	}
	return rc
}

// route binds fn to the frame and picks its candidate shard from the
// body's first operation (shard 0 for a body that performs none).
//
//doppel:hotpath
func (rc *routedCall) route(fn engine.TxFunc) int {
	rc.fn = fn
	rc.probe.reset()
	rc.check.foreign = false
	_ = fn(&rc.probe) // the probe error is the mechanism, not a failure
	shard := 0
	if rc.probe.has {
		shard = rc.r.ShardOf(rc.probe.key)
	}
	rc.shard = shard
	return shard
}

func (rc *routedCall) release() {
	rc.fn = nil
	rc.check.inner = nil
	rc.r.calls.Put(rc)
}

// errProbe is returned by every probeTx operation so the body stops
// after revealing its first key. Bodies are pure functions of what they
// read (the engine.TxFunc contract), so aborting the probe run has no
// effect and the error never escapes to the caller.
var errProbe = errors.New("router: probe")

// probeTx implements engine.Tx by recording the first key accessed and
// failing every operation.
type probeTx struct {
	has bool
	key string
}

func (p *probeTx) reset() { p.has, p.key = false, "" }

func (p *probeTx) note(key string) error {
	if !p.has {
		p.has, p.key = true, key
	}
	return errProbe
}

func (p *probeTx) Get(key string) (*store.Value, error)          { return nil, p.note(key) }
func (p *probeTx) GetForUpdate(key string) (*store.Value, error) { return nil, p.note(key) }
func (p *probeTx) GetInt(key string) (int64, error)              { return 0, p.note(key) }
func (p *probeTx) GetIntForUpdate(key string) (int64, error)     { return 0, p.note(key) }
func (p *probeTx) GetBytes(key string) ([]byte, error)           { return nil, p.note(key) }
func (p *probeTx) GetTuple(key string) (store.Tuple, bool, error) {
	return store.Tuple{}, false, p.note(key)
}
func (p *probeTx) GetTopK(key string) ([]store.TopKEntry, error) { return nil, p.note(key) }

func (p *probeTx) Put(key string, v *store.Value) error { return p.note(key) }
func (p *probeTx) PutInt(key string, n int64) error     { return p.note(key) }
func (p *probeTx) PutBytes(key string, b []byte) error  { return p.note(key) }

func (p *probeTx) Add(key string, n int64) error  { return p.note(key) }
func (p *probeTx) Max(key string, n int64) error  { return p.note(key) }
func (p *probeTx) Min(key string, n int64) error  { return p.note(key) }
func (p *probeTx) Mult(key string, n int64) error { return p.note(key) }
func (p *probeTx) OPut(key string, order store.Order, data []byte) error {
	return p.note(key)
}
func (p *probeTx) TopKInsert(key string, order int64, data []byte, k int) error {
	return p.note(key)
}

func (p *probeTx) WorkerID() int { return -1 }

// checkTx wraps a shard's engine.Tx, vetoing any operation whose key
// another shard owns. The veto sets foreign and starves the body with
// errCrossShard; whether that error makes it back through the engine or
// is swallowed by a stash drain, the router reads foreign afterwards.
type checkTx struct {
	r       *Router
	inner   engine.Tx
	shard   int
	foreign bool
}

func (c *checkTx) reset(r *Router, inner engine.Tx, shard int) {
	c.r, c.inner, c.shard, c.foreign = r, inner, shard, false
}

func (c *checkTx) ok(key string) bool {
	if c.foreign {
		return false
	}
	if c.r.ShardOf(key) != c.shard {
		c.foreign = true
		return false
	}
	return true
}

func (c *checkTx) Get(key string) (*store.Value, error) {
	if !c.ok(key) {
		return nil, errCrossShard
	}
	return c.inner.Get(key)
}

func (c *checkTx) GetForUpdate(key string) (*store.Value, error) {
	if !c.ok(key) {
		return nil, errCrossShard
	}
	return c.inner.GetForUpdate(key)
}

func (c *checkTx) GetInt(key string) (int64, error) {
	if !c.ok(key) {
		return 0, errCrossShard
	}
	return c.inner.GetInt(key)
}

func (c *checkTx) GetIntForUpdate(key string) (int64, error) {
	if !c.ok(key) {
		return 0, errCrossShard
	}
	return c.inner.GetIntForUpdate(key)
}

func (c *checkTx) GetBytes(key string) ([]byte, error) {
	if !c.ok(key) {
		return nil, errCrossShard
	}
	return c.inner.GetBytes(key)
}

func (c *checkTx) GetTuple(key string) (store.Tuple, bool, error) {
	if !c.ok(key) {
		return store.Tuple{}, false, errCrossShard
	}
	return c.inner.GetTuple(key)
}

func (c *checkTx) GetTopK(key string) ([]store.TopKEntry, error) {
	if !c.ok(key) {
		return nil, errCrossShard
	}
	return c.inner.GetTopK(key)
}

func (c *checkTx) Put(key string, v *store.Value) error {
	if !c.ok(key) {
		return errCrossShard
	}
	return c.inner.Put(key, v)
}

func (c *checkTx) PutInt(key string, n int64) error {
	if !c.ok(key) {
		return errCrossShard
	}
	return c.inner.PutInt(key, n)
}

func (c *checkTx) PutBytes(key string, b []byte) error {
	if !c.ok(key) {
		return errCrossShard
	}
	return c.inner.PutBytes(key, b)
}

func (c *checkTx) Add(key string, n int64) error {
	if !c.ok(key) {
		return errCrossShard
	}
	return c.inner.Add(key, n)
}

func (c *checkTx) Max(key string, n int64) error {
	if !c.ok(key) {
		return errCrossShard
	}
	return c.inner.Max(key, n)
}

func (c *checkTx) Min(key string, n int64) error {
	if !c.ok(key) {
		return errCrossShard
	}
	return c.inner.Min(key, n)
}

func (c *checkTx) Mult(key string, n int64) error {
	if !c.ok(key) {
		return errCrossShard
	}
	return c.inner.Mult(key, n)
}

func (c *checkTx) OPut(key string, order store.Order, data []byte) error {
	if !c.ok(key) {
		return errCrossShard
	}
	return c.inner.OPut(key, order, data)
}

func (c *checkTx) TopKInsert(key string, order int64, data []byte, k int) error {
	if !c.ok(key) {
		return errCrossShard
	}
	return c.inner.TopKInsert(key, order, data, k)
}

func (c *checkTx) WorkerID() int { return c.inner.WorkerID() }
