package router

import (
	"context"
	"errors"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"doppel/internal/engine"
	"doppel/internal/metrics"
	"doppel/internal/store"
)

// Partitioner maps keys to shards. Implementations must be pure and
// safe for concurrent use: the router calls Shard on every operation of
// every transaction, from many goroutines at once, and routing breaks
// if the same key ever maps to two different shards.
type Partitioner interface {
	// Shard returns the owning shard for key, in [0, shards).
	Shard(key string, shards int) int
}

// HashPartitioner is the default Partitioner: FNV-1a over the key bytes,
// reduced modulo the shard count. FNV is stable across processes and
// restarts, which a persistent cluster needs — each shard's redo log
// must replay into the same shard that wrote it.
type HashPartitioner struct{}

// Shard implements Partitioner.
func (HashPartitioner) Shard(key string, shards int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(shards))
}

// SeededPartitioner hashes with a per-process random seed
// (hash/maphash). It is hostile-key resistant but NOT stable across
// restarts, so it is only safe for purely in-memory clusters.
type SeededPartitioner struct {
	seed maphash.Seed
	once sync.Once
}

// Shard implements Partitioner.
func (p *SeededPartitioner) Shard(key string, shards int) int {
	p.once.Do(func() { p.seed = maphash.MakeSeed() })
	return int(maphash.String(p.seed, key) % uint64(shards))
}

// Shard is the per-shard database surface the router drives. The
// cluster wraps each *doppel.DB in a backend satisfying it
// (doppel.TxFunc aliases engine.TxFunc).
type Shard interface {
	ExecContext(ctx context.Context, fn engine.TxFunc) error
	ExecAsync(fn engine.TxFunc, done func(error))
	// Store exposes the shard's record store. The cross-shard prepare
	// works at record level: it installs commit fences and reads
	// validation snapshots directly, without consuming a shard worker.
	Store() *store.Store
	// SplitActive reports whether key is split data in the shard's
	// current phase — its global record then lags the per-core slices,
	// so a prepare-time snapshot of it is not committed state.
	SplitActive(key string) bool
}

// errCrossShard aborts a single-shard attempt that touched a key owned
// by another shard. It surfaces as a user abort inside the shard engine
// — the attempt has no effects — and the router translates it into a
// cross-shard re-execution rather than returning it to the caller.
var errCrossShard = errors.New("router: transaction touched a key on another shard")

// Router routes transactions across a fixed set of shards. See the
// package comment for the protocol.
type Router struct {
	shards []Shard
	part   Partitioner
	stats  *metrics.RouterStats

	// locks are the per-shard commit locks of the cross-shard protocol.
	// Only cross-shard transactions take them (ascending shard ID);
	// single-shard traffic never touches them.
	locks []sync.Mutex

	// calls pools routedCall frames so the single-shard path allocates
	// nothing in steady state.
	calls sync.Pool

	// fenceSeq generates commit-fence tokens. Tokens only need to be
	// unique among in-flight cross-shard commits, but a global counter is
	// one uncontended atomic per commit and never recycles early.
	fenceSeq atomic.Uint64

	// NoFences disables commit-fence installation, reverting prepare to
	// pure value validation — reopening the prepare→apply lost-update
	// window. It exists so the conservation stress test can demonstrate
	// the bug the fences close; never set it in production. It must be
	// set before any traffic and not changed after.
	NoFences bool
}

// New builds a router over shards. A nil part defaults to
// HashPartitioner; a nil stats allocates a private sink.
func New(shards []Shard, part Partitioner, stats *metrics.RouterStats) *Router {
	if len(shards) == 0 {
		panic("router: no shards")
	}
	if part == nil {
		part = HashPartitioner{}
	}
	if stats == nil {
		stats = &metrics.RouterStats{}
	}
	r := &Router{
		shards: shards,
		part:   part,
		stats:  stats,
		locks:  make([]sync.Mutex, len(shards)),
	}
	r.calls.New = func() any { return newRoutedCall(r) }
	return r
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// ShardOf returns the shard that owns key.
func (r *Router) ShardOf(key string) int { return r.part.Shard(key, len(r.shards)) }

// Stats snapshots the router's counters.
func (r *Router) Stats() metrics.RouterSnapshot { return r.stats.Snapshot() }

// ExecContext runs fn to completion: single-shard fast path first,
// cross-shard protocol if the body turns out to span shards. ctx
// cancellation is honored while queued on a shard and between
// cross-shard rounds.
func (r *Router) ExecContext(ctx context.Context, fn engine.TxFunc) error {
	rc := r.calls.Get().(*routedCall)
	shard := rc.route(fn)
	err := r.shards[shard].ExecContext(ctx, rc.run)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// The shard may still be executing rc.run: the frame cannot be
		// pooled (or even read) safely. Abandon it to the GC.
		return err
	}
	foreign := rc.check.foreign
	rc.release()
	switch {
	case err == nil && !foreign:
		r.stats.SingleShard.Add(1)
		return nil
	case errors.Is(err, errCrossShard) || foreign:
		// foreign with err == nil happens when the attempt was stashed
		// and the foreign access was discovered during the stash drain,
		// whose replay errors the engine drops.
		r.stats.Reroutes.Add(1)
		return r.execCross(ctx, fn)
	default:
		return err
	}
}

// ExecAsync is ExecContext's callback form, mirroring DB.ExecAsync:
// done is invoked exactly once, possibly synchronously, and must not
// block or submit further transactions synchronously. A cross-shard
// fallback runs on a fresh goroutine so the shard worker that detected
// it is never captured.
func (r *Router) ExecAsync(fn engine.TxFunc, done func(error)) {
	rc := r.calls.Get().(*routedCall)
	shard := rc.route(fn)
	r.shards[shard].ExecAsync(rc.run, func(err error) {
		foreign := rc.check.foreign
		rc.release()
		switch {
		case err == nil && !foreign:
			r.stats.SingleShard.Add(1)
			done(nil)
		case errors.Is(err, errCrossShard) || foreign:
			r.stats.Reroutes.Add(1)
			go func() { done(r.execCross(context.Background(), fn)) }()
		default:
			done(err)
		}
	})
}
