// Package router partitions a keyspace across N independent shard
// databases and routes transactions to them: whole to one shard when
// every key the transaction touches lives there (the overwhelmingly
// common case), or through a fenced two-phase commit when the
// transaction spans shards. doppel.Cluster is the public face; this
// package holds the mechanism.
//
// # Routing
//
// The router cannot know a transaction's keys without running its body,
// so it routes optimistically: a zero-shard-access probe run of the
// body captures the first operation's key (the first operation can
// never depend on an earlier read), the transaction is submitted to
// that key's shard, and every operation is checked against the shard's
// key range as it executes. A transaction that stays on its shard
// commits on the embedded fast path — the check is one hash compare per
// operation, and the routing state is pooled, so the steady-state path
// adds no allocation. A transaction that touches a foreign key aborts
// that attempt (before any effect) and re-executes on the cross-shard
// path.
//
// # The cross-shard protocol
//
// A cross-shard transaction runs in three stages:
//
//  1. Gather: the body re-executes against a routing transaction that
//     dispatches each read to the owning shard (one single-key,
//     read-only shard transaction per distinct key, with
//     read-your-writes overlay) and buffers each write, tagged with its
//     owning shard. Splittable updates also read their target so type
//     errors surface before anything commits, mirroring the embedded
//     joined-phase path.
//  2. Prepare: the touched shards' commit locks are taken in ascending
//     shard-ID order — deterministic ordering, so concurrent
//     cross-shard transactions cannot deadlock — then every touched
//     record is fenced (store.Record.Fence, a per-key intent token) and
//     every gathered read is revalidated against the record's current
//     value, read under the record's commit lock. A stale value, a
//     foreign fence, or a key in an active split phase vetoes: fences
//     and locks release, nothing applied, gather retries with jittered
//     backoff.
//  3. Commit: one shard transaction per shard with writes revalidates
//     that shard's gathered reads AND replays its buffered writes — per
//     shard, validate+write is a single atomic OCC commit. The
//     transaction declares the fence token it owns (engine.FenceTx) so
//     it passes its own fences. When every apply lands, fences release,
//     then the commit locks.
//
// # Commit fences
//
// The fence is what makes a cross-shard commit atomic against
// single-shard traffic that never touches the router. Every commit path
// in the shard engine checks the fence word: writers under the record's
// commit lock, validating readers in their read-validation loop, and
// execution-time reads as an early abort. A transaction that sees a
// foreign fence aborts with engine.AbortedFenced and retries once the
// fence releases (microseconds — but the retry must not block the
// shard's worker loop, because the releasing apply transaction may be
// queued behind it; doppel parks such requests off the queue).
//
// The record lock orders fence publication against in-flight
// committers: prepare reads its validation snapshot inside the lock
// after fencing, and a committer checks fences while holding the same
// lock — so either the committer finished first and prepare sees its
// installed value (stale, retry), or the fence is visible to the
// committer and it yields. Once a read validates with its fence up, the
// record cannot change until the fences release: every write path
// aborts on a foreign fence. That makes a commit-stage apply failure
// unreachable by construction — replay-op type compatibility was
// checked at gather against the very values prepare revalidated —
// demoting RouterStats.CrossShardApplyLost to an invariant counter that
// must read zero.
//
// # Invariants and caveats
//
//   - A transaction observes no effect of its own aborted attempts:
//     rerouting, stale prepares and user aborts all happen before any
//     shard transaction installs a write.
//   - Cross-shard transactions are serializable with respect to each
//     other (the per-shard commit locks order them) and atomic against
//     single-shard transactions (the fences order those): a
//     single-shard transaction serializes entirely before the
//     cross-shard commit's prepare or entirely after its last apply.
//   - Readers cannot observe a cross-shard commit's partial state: a
//     read-only transaction validates fences along with TIDs, so a
//     snapshot that validates was taken wholly before prepare (all
//     fences clear, no apply had run) or wholly after the last apply
//     (applies bump TIDs, so an in-between snapshot fails the TID
//     check).
//   - Unfenced keys pay nothing: the fence check is one atomic load per
//     record on paths that already load the record's TID word, and
//     single-shard transactions still never take the router's commit
//     locks.
//   - Split-phase interaction: prepare treats a key that is currently
//     split data as stale (its global record lags the per-core slices),
//     and a fenced key never enters a split set — reconciliation merges
//     slices without fence checks, so the two must not overlap. The
//     exclusion is enforced at publication time: prepare installs its
//     fences and only then reads phase+split set under the engine's
//     publication lock (SplitActive), while the phase-change publisher
//     re-filters the candidate set under that same lock, dropping any
//     key whose fence appeared after the classifier's advisory check.
//     The lock orders the two critical sections, so either the
//     publisher observes the fence (the key stays joined for this split
//     phase) or prepare observes the published set (and retries) —
//     the classifier-vs-prepare window this used to leave open is
//     closed. tools/analyze's lockorder pass keeps the ordering
//     deadlock-free statically, and TestFenceSplitRace stresses the
//     boundary with phase changes forced at millisecond cadence.
//   - RouterStats.CrossShardApplyLost must read zero. Non-zero means a
//     fenced record changed between prepare validation and apply — a
//     fence-protocol bug, not an expected workload outcome. The failing
//     shard's apply is rolled back by its own OCC (validate+write is
//     one transaction), but other shards' applies stand; the error is
//     returned to the caller.
//
// The remaining trade is the paper's: single-record operations — the
// overwhelming majority — keep a zero-overhead fast path, and only
// transactions that actually span shards (plus any single-shard
// transaction unlucky enough to collide with one mid-commit, counted in
// TxnStats.FenceAborts) pay for coordination.
package router
