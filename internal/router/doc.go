// Package router partitions a keyspace across N independent shard
// databases and routes transactions to them: whole to one shard when
// every key the transaction touches lives there (the overwhelmingly
// common case), or through a minimal two-phase commit when the
// transaction spans shards. doppel.Cluster is the public face; this
// package holds the mechanism.
//
// # Routing
//
// The router cannot know a transaction's keys without running its body,
// so it routes optimistically: a zero-shard-access probe run of the
// body captures the first operation's key (the first operation can
// never depend on an earlier read), the transaction is submitted to
// that key's shard, and every operation is checked against the shard's
// key range as it executes. A transaction that stays on its shard
// commits on the embedded fast path — the check is one hash compare per
// operation, and the routing state is pooled, so the steady-state path
// adds no allocation. A transaction that touches a foreign key aborts
// that attempt (before any effect) and re-executes on the cross-shard
// path.
//
// # The cross-shard protocol
//
// A cross-shard transaction runs in three stages:
//
//  1. Gather: the body re-executes against a routing transaction that
//     dispatches each read to the owning shard (one single-key,
//     read-only shard transaction per distinct key, with
//     read-your-writes overlay) and buffers each write, tagged with its
//     owning shard. Splittable updates also read their target so type
//     errors surface before anything commits, mirroring the embedded
//     joined-phase path.
//  2. Prepare: the touched shards' commit locks are taken in ascending
//     shard-ID order — deterministic ordering, so concurrent
//     cross-shard transactions cannot deadlock — and every shard with
//     reads revalidates them in one shard transaction (current value
//     equal to gathered value, under that shard's own OCC). Any stale
//     read vetoes: locks release, nothing applied, gather retries.
//  3. Commit: with every prepare vote in, the buffered writes fan out,
//     one shard transaction per touched shard, then the locks release.
//
// # Invariants and caveats
//
//   - A transaction observes no effect of its own aborted attempts:
//     rerouting, stale prepares and user aborts all happen before any
//     shard transaction installs a write.
//   - Cross-shard transactions are serializable with respect to each
//     other: the per-shard commit locks make gather-validated state
//     stable from prepare through commit against every other
//     cross-shard transaction.
//   - Single-shard transactions are atomic and serializable per shard,
//     and never wait on the router: they do not take the commit locks.
//     The price is a window between a shard's prepare validation and
//     its commit apply in which an independent single-shard write can
//     slip in. Commutative operations (Add, Max, Min, Mult, OPut,
//     TopKInsert) replay as operations and stay correct under that
//     interleaving; a Put computed from gathered reads can overwrite
//     the interloper (classic write skew against non-locking writers).
//     A readers-see-partial-state window likewise exists between the
//     per-shard applies of one cross-shard commit.
//   - If a commit-stage apply fails on one shard after prepare
//     validated (a racing type change), the other shards' applies
//     stand; the failure is returned to the caller and counted in
//     RouterStats.CrossShardApplyLost.
//
// These relaxations are the "minimal" in minimal 2PC: they trade full
// external serializability for a zero-overhead single-shard fast path,
// the trade the paper's workloads (overwhelmingly single-record
// operations) want.
package router
