package metrics

import "sync"

// rpcShards spreads request accounting over several locks so database
// workers' completion callbacks don't all serialize on one mutex.
const rpcShards = 8

// RPCStats accumulates server-side request accounting: counts and a
// request latency histogram. Unlike TxnStats (one per worker, merged
// after a run), RPCStats is shared by every connection of a server, so
// it synchronizes internally — sharded, because Record runs on the
// database workers' request-completion path.
type RPCStats struct {
	shards [rpcShards]rpcShard
}

type rpcShard struct {
	mu       sync.Mutex
	requests uint64
	errors   uint64
	latency  *Hist
	_        [24]byte // keep neighbouring shards off one cache line
}

// NewRPCStats returns a zeroed RPCStats.
func NewRPCStats() *RPCStats {
	s := &RPCStats{}
	for i := range s.shards {
		s.shards[i].latency = NewHist()
	}
	return s
}

// Record adds one executed request with its latency in nanoseconds.
// The shard is picked from the latency's low bits: effectively random
// at nanosecond granularity, and free of shared state.
func (s *RPCStats) Record(latencyNanos int64, ok bool) {
	sh := &s.shards[uint64(latencyNanos)%rpcShards]
	sh.mu.Lock()
	sh.requests++
	if !ok {
		sh.errors++
	}
	sh.latency.Record(latencyNanos)
	sh.mu.Unlock()
}

// RecordError counts a request that failed before executing (e.g. an
// unknown procedure) without contributing a latency sample, which
// would otherwise drag the histogram's quantiles toward zero.
func (s *RPCStats) RecordError() {
	sh := &s.shards[0]
	sh.mu.Lock()
	sh.requests++
	sh.errors++
	sh.mu.Unlock()
}

// Snapshot returns the merged counters and an independent copy of the
// latency histogram, safe to read while the server keeps recording.
func (s *RPCStats) Snapshot() (requests, errors uint64, latency *Hist) {
	merged := NewHist()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		requests += sh.requests
		errors += sh.errors
		merged.Merge(sh.latency)
		sh.mu.Unlock()
	}
	return requests, errors, merged
}
