// Package metrics provides the measurement substrate used by the benchmark
// harness and the simulator: log-bucketed latency histograms and simple
// throughput accumulators. Histograms record values in abstract time units
// (nanoseconds for the real engine, simulated nanoseconds for the
// simulator) and report mean and quantiles, which is what the paper's
// Table 3 and Figure 13 present.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
)

// histSubBuckets is the number of linear sub-buckets within each power of
// two. 16 sub-buckets gives a worst-case quantile error of about 6%.
const histSubBuckets = 16

// histBuckets covers values up to 2^40 (about 18 minutes in nanoseconds).
const histBuckets = 41 * histSubBuckets

// Hist is a log-linear histogram of non-negative int64 samples. It is not
// safe for concurrent use; each worker owns one and they are merged.
type Hist struct {
	counts [histBuckets]uint64
	total  uint64
	sum    float64
	min    int64
	max    int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{min: math.MaxInt64, max: math.MinInt64}
}

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSubBuckets {
		return int(v)
	}
	// The value has bit length L >= 5. Top log2 bucket index is L-4;
	// sub-bucket is the next 4 bits below the leading bit.
	l := bits.Len64(uint64(v))
	exp := l - 4 // >= 1
	sub := int(uint64(v)>>(uint(exp)-1)) & (histSubBuckets - 1)
	idx := exp*histSubBuckets + sub
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketLow returns the smallest value mapping to bucket idx; used to
// report quantiles.
func bucketLow(idx int) int64 {
	exp := idx / histSubBuckets
	sub := idx % histSubBuckets
	if exp == 0 {
		return int64(sub)
	}
	return (int64(histSubBuckets) + int64(sub)) << (uint(exp) - 1)
}

// Record adds one sample.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of recorded samples.
func (h *Hist) Count() uint64 { return h.total }

// Mean reports the arithmetic mean of samples, or 0 when empty.
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min reports the smallest sample, or 0 when empty.
func (h *Hist) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest sample, or 0 when empty.
func (h *Hist) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile reports an approximation of the q-quantile (0 <= q <= 1) with
// bounded relative error. Quantile(0.99) is the paper's "99% latency".
func (h *Hist) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			low := bucketLow(i)
			if low < h.min {
				low = h.min
			}
			if low > h.max {
				low = h.max
			}
			return low
		}
	}
	return h.max
}

// Merge adds all samples of other into h.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears the histogram.
func (h *Hist) Reset() {
	*h = Hist{min: math.MaxInt64, max: math.MinInt64}
}

// String summarizes the histogram for logs.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d max=%d",
		h.total, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}
