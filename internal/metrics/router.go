package metrics

import "sync/atomic"

// RouterStats counts a cluster router's activity. All fields are
// atomics: the router updates them from many caller goroutines and
// worker callbacks concurrently. It is the cluster's shared metrics
// sink — every shard's router traffic lands in the one instance the
// cluster owns.
type RouterStats struct {
	// SingleShard counts transactions that routed whole to one shard
	// and committed on the embedded fast path.
	SingleShard atomic.Uint64
	// Reroutes counts single-shard attempts that discovered a key owned
	// by another shard mid-execution and fell back to the cross-shard
	// path. The aborted attempt had no effects.
	Reroutes atomic.Uint64
	// CrossShard counts transactions committed through the two-phase
	// cross-shard protocol.
	CrossShard atomic.Uint64
	// CrossShardRetries counts 2PC rounds that failed prepare
	// validation (a value read during gather had changed) and were
	// retried from scratch.
	CrossShardRetries atomic.Uint64
	// CrossShardAborts counts cross-shard transactions that ended with
	// the body's own error (user abort) instead of committing.
	CrossShardAborts atomic.Uint64
	// CrossShardApplyLost counts per-shard commit applications that
	// failed after the transaction's prepare had validated. With commit
	// fences this is a should-never-fire invariant counter: fenced
	// records cannot change between prepare validation and apply, so a
	// non-zero value means the fence protocol was violated (file a bug).
	CrossShardApplyLost atomic.Uint64
	// FencedKeys counts per-key commit-fence installations by prepare.
	// Each cross-shard commit round fences every key it touches, so the
	// count grows by the transaction's key count per round.
	FencedKeys atomic.Uint64
}

// RouterSnapshot is a point-in-time copy of RouterStats.
type RouterSnapshot struct {
	SingleShard         uint64
	Reroutes            uint64
	CrossShard          uint64
	CrossShardRetries   uint64
	CrossShardAborts    uint64
	CrossShardApplyLost uint64
	FencedKeys          uint64
}

// Snapshot copies the counters.
func (r *RouterStats) Snapshot() RouterSnapshot {
	return RouterSnapshot{
		SingleShard:         r.SingleShard.Load(),
		Reroutes:            r.Reroutes.Load(),
		CrossShard:          r.CrossShard.Load(),
		CrossShardRetries:   r.CrossShardRetries.Load(),
		CrossShardAborts:    r.CrossShardAborts.Load(),
		CrossShardApplyLost: r.CrossShardApplyLost.Load(),
		FencedKeys:          r.FencedKeys.Load(),
	}
}
