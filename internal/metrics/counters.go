package metrics

import "fmt"

// TxnStats accumulates per-worker transaction outcomes. Workers own one
// each; the harness merges them after a run. The distinction between
// aborts (OCC conflicts, retried with backoff) and stashes (Doppel split
// phase incompatibilities, retried in the next joined phase) mirrors the
// paper's §5 terminology.
type TxnStats struct {
	Committed uint64 // transactions that committed
	Aborted   uint64 // conflict aborts (will be retried)
	Stashed   uint64 // split-phase incompatibility stashes (retried later)
	Retries   uint64 // extra re-executions beyond a stashed txn's first replay

	// MergeFailures counts reconciliation merges that failed (a split
	// record's global value and its per-core slice had incompatible
	// types), dropping that worker's absorbed slice writes for the
	// record. The record keeps its pre-merge value and TID; a non-zero
	// count means committed split-phase operations were lost.
	MergeFailures uint64

	// StashDropped counts stashed transactions abandoned after the
	// drain's replay cap (a pathological livelock: the transaction kept
	// conflict-aborting for over a million consecutive replays). A
	// non-zero count means an accepted transaction never executed.
	StashDropped uint64

	// FenceAborts counts attempts that aborted on a commit fence: the
	// transaction touched a record an in-flight cross-shard commit had
	// validated but not yet applied. Like Aborted, these are retried;
	// unlike Aborted they are not conflicts between peers but yields to
	// the cross-shard protocol.
	FenceAborts uint64

	ReadLatency  *Hist // commit latency of read-only transactions
	WriteLatency *Hist // commit latency of transactions that wrote
}

// NewTxnStats returns a zeroed TxnStats with allocated histograms.
func NewTxnStats() *TxnStats {
	return &TxnStats{ReadLatency: NewHist(), WriteLatency: NewHist()}
}

// Merge folds other into s.
func (s *TxnStats) Merge(other *TxnStats) {
	if other == nil {
		return
	}
	s.Committed += other.Committed
	s.Aborted += other.Aborted
	s.Stashed += other.Stashed
	s.Retries += other.Retries
	s.MergeFailures += other.MergeFailures
	s.StashDropped += other.StashDropped
	s.FenceAborts += other.FenceAborts
	s.ReadLatency.Merge(other.ReadLatency)
	s.WriteLatency.Merge(other.WriteLatency)
}

// Reset zeroes all counters and histograms.
func (s *TxnStats) Reset() {
	s.Committed, s.Aborted, s.Stashed, s.Retries = 0, 0, 0, 0
	s.MergeFailures, s.StashDropped, s.FenceAborts = 0, 0, 0
	s.ReadLatency.Reset()
	s.WriteLatency.Reset()
}

// Throughput reports committed transactions per second given an elapsed
// duration in nanoseconds.
func (s *TxnStats) Throughput(elapsedNanos int64) float64 {
	if elapsedNanos <= 0 {
		return 0
	}
	return float64(s.Committed) / (float64(elapsedNanos) / 1e9)
}

// String summarizes the counters for logs.
func (s *TxnStats) String() string {
	return fmt.Sprintf("committed=%d aborted=%d stashed=%d retries=%d merge_failures=%d stash_dropped=%d fence_aborts=%d",
		s.Committed, s.Aborted, s.Stashed, s.Retries, s.MergeFailures, s.StashDropped, s.FenceAborts)
}
