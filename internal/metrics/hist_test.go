package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"doppel/internal/rng"
)

func TestHistEmpty(t *testing.T) {
	h := NewHist()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram min/max should be 0")
	}
}

func TestHistSingleValue(t *testing.T) {
	h := NewHist()
	h.Record(1234)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 1234 {
		t.Fatalf("mean = %v", h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 1100 || got > 1234 {
			t.Fatalf("quantile(%v) = %d, want near 1234", q, got)
		}
	}
}

func TestHistSmallValuesExact(t *testing.T) {
	// Values below histSubBuckets land in exact buckets.
	h := NewHist()
	for v := int64(0); v < 16; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("q0 = %d", got)
	}
	if got := h.Quantile(1); got != 15 {
		t.Fatalf("q1 = %d", got)
	}
}

func TestHistNegativeClamped(t *testing.T) {
	h := NewHist()
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative sample should clamp to 0: min=%d max=%d", h.Min(), h.Max())
	}
}

func TestHistQuantileAccuracy(t *testing.T) {
	// Compare against exact quantiles of the recorded data; log-linear
	// bucketing bounds relative error by 1/16.
	r := rng.New(42)
	h := NewHist()
	var vals []int64
	for i := 0; i < 50000; i++ {
		v := int64(r.Uint64n(1_000_000))
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		exact := vals[int(q*float64(len(vals)))]
		got := h.Quantile(q)
		relErr := math.Abs(float64(got)-float64(exact)) / float64(exact)
		if relErr > 0.10 {
			t.Fatalf("q=%v exact=%d got=%d relErr=%.3f", q, exact, got, relErr)
		}
	}
}

func TestHistMeanExact(t *testing.T) {
	h := NewHist()
	var sum float64
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 17)
		sum += float64(i * 17)
	}
	want := sum / 1000
	if math.Abs(h.Mean()-want) > 1e-9 {
		t.Fatalf("mean %v want %v", h.Mean(), want)
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHist(), NewHist()
	for i := int64(0); i < 1000; i++ {
		a.Record(i)
		b.Record(i + 5000)
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Min() != 0 || a.Max() != 5999 {
		t.Fatalf("min/max = %d/%d", a.Min(), a.Max())
	}
	a.Merge(nil) // must not panic
	if a.Count() != 2000 {
		t.Fatal("merge(nil) changed count")
	}
}

func TestHistReset(t *testing.T) {
	h := NewHist()
	h.Record(100)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestBucketMonotone(t *testing.T) {
	// bucketOf must be monotone non-decreasing and bucketLow must be a
	// lower bound of every value in the bucket.
	f := func(v uint32) bool {
		x := int64(v)
		b := bucketOf(x)
		return bucketLow(b) <= x && bucketOf(x+1) >= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketHugeValue(t *testing.T) {
	b := bucketOf(math.MaxInt64)
	if b != histBuckets-1 {
		t.Fatalf("max value bucket = %d, want %d", b, histBuckets-1)
	}
	h := NewHist()
	h.Record(math.MaxInt64)
	if h.Quantile(0.5) <= 0 {
		t.Fatal("quantile of huge value should be positive")
	}
}

func TestTxnStatsMergeAndThroughput(t *testing.T) {
	a, b := NewTxnStats(), NewTxnStats()
	a.Committed, a.Aborted = 10, 2
	b.Committed, b.Stashed, b.Retries = 5, 3, 1
	a.ReadLatency.Record(100)
	b.ReadLatency.Record(200)
	b.WriteLatency.Record(300)
	a.Merge(b)
	if a.Committed != 15 || a.Aborted != 2 || a.Stashed != 3 || a.Retries != 1 {
		t.Fatalf("bad merge: %+v", a)
	}
	if a.ReadLatency.Count() != 2 || a.WriteLatency.Count() != 1 {
		t.Fatal("histograms not merged")
	}
	if tp := a.Throughput(1e9); math.Abs(tp-15) > 1e-9 {
		t.Fatalf("throughput = %v", tp)
	}
	if tp := a.Throughput(0); tp != 0 {
		t.Fatalf("zero elapsed throughput = %v", tp)
	}
	a.Merge(nil)
	a.Reset()
	if a.Committed != 0 || a.ReadLatency.Count() != 0 {
		t.Fatal("reset failed")
	}
}

func TestHistString(t *testing.T) {
	h := NewHist()
	h.Record(5)
	if h.String() == "" {
		t.Fatal("empty string")
	}
	s := NewTxnStats()
	if s.String() == "" {
		t.Fatal("empty string")
	}
}
