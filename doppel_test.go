package doppel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestOpenExecClose(t *testing.T) {
	db := Open(Options{Workers: 2})
	defer db.Close()
	err := db.Exec(func(tx Tx) error {
		if err := tx.PutInt("a", 1); err != nil {
			return err
		}
		return tx.Add("a", 4)
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Exec(func(tx Tx) error {
		n, err := tx.GetInt("a")
		if err != nil {
			return err
		}
		if n != 5 {
			return fmt.Errorf("got %d", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExecUserError(t *testing.T) {
	db := Open(Options{Workers: 1})
	defer db.Close()
	boom := errors.New("boom")
	if err := db.Exec(func(tx Tx) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestExecAfterClose(t *testing.T) {
	db := Open(Options{Workers: 1})
	db.Close()
	if err := db.Exec(func(tx Tx) error { return nil }); err == nil {
		t.Fatal("expected error after close")
	}
	db.Close() // idempotent
}

func TestConcurrentCounterWithHint(t *testing.T) {
	db := Open(Options{Workers: 4, PhaseLength: 2 * time.Millisecond})
	defer db.Close()
	db.SplitHint("ctr", OpAdd)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := db.Exec(func(tx Tx) error { return tx.Add("ctr", 1) }); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Reads of split data stash and commit in the next joined phase;
	// ExecWait guarantees the read observed a fully reconciled value.
	var final int64
	err := db.ExecWait(func(tx Tx) error {
		n, err := tx.GetInt("ctr")
		final = n
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if final != goroutines*perG {
		t.Fatalf("counter %d want %d", final, goroutines*perG)
	}
	st := db.Stats()
	if st.Committed == 0 {
		t.Fatal("no commits recorded")
	}
	if st.Phase != "joined" && st.Phase != "split" {
		t.Fatalf("phase %q", st.Phase)
	}
}

func TestAutoSplitUnderRealContention(t *testing.T) {
	opts := Options{Workers: 4, PhaseLength: 2 * time.Millisecond}
	opts.Engine.SplitMinConflicts = 2
	opts.Engine.SplitFraction = 0.0001
	db := Open(opts)
	defer db.Close()
	var wg sync.WaitGroup
	var accepted atomic.Int64
	stop := time.Now().Add(300 * time.Millisecond)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				if db.Exec(func(tx Tx) error { return tx.Add("hot", 1) }) == nil {
					accepted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	// Whether the classifier split depends on observed interleaving on
	// this machine; the invariant that must always hold is conservation:
	// every accepted Add is reflected exactly once.
	var total int64
	if err := db.ExecWait(func(tx Tx) error {
		n, err := tx.GetInt("hot")
		total = n
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if total != accepted.Load() {
		t.Fatalf("counter %d, accepted adds %d", total, accepted.Load())
	}
}

func TestAllOpsThroughPublicAPI(t *testing.T) {
	db := Open(Options{Workers: 2})
	defer db.Close()
	err := db.Exec(func(tx Tx) error {
		if err := tx.Max("mx", 9); err != nil {
			return err
		}
		if err := tx.Min("mn", -3); err != nil {
			return err
		}
		if err := tx.Mult("ml", 6); err != nil {
			return err
		}
		if err := tx.OPut("op", Order{A: 5}, []byte("win")); err != nil {
			return err
		}
		if err := tx.TopKInsert("tk", 8, []byte("e"), 4); err != nil {
			return err
		}
		return tx.PutBytes("by", []byte("raw"))
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Exec(func(tx Tx) error {
		if n, _ := tx.GetInt("mx"); n != 9 {
			return fmt.Errorf("max %d", n)
		}
		if n, _ := tx.GetInt("mn"); n != -3 {
			return fmt.Errorf("min %d", n)
		}
		if n, _ := tx.GetInt("ml"); n != 6 {
			return fmt.Errorf("mult %d", n)
		}
		tup, ok, err := tx.GetTuple("op")
		if err != nil || !ok || string(tup.Data) != "win" {
			return fmt.Errorf("oput %v %v %v", tup, ok, err)
		}
		es, err := tx.GetTopK("tk")
		if err != nil || len(es) != 1 || es[0].Order != 8 {
			return fmt.Errorf("topk %v %v", es, err)
		}
		b, err := tx.GetBytes("by")
		if err != nil || string(b) != "raw" {
			return fmt.Errorf("bytes %q %v", b, err)
		}
		v, err := tx.Get("by")
		if err != nil || v == nil {
			return fmt.Errorf("get %v %v", v, err)
		}
		if _, err := tx.GetForUpdate("mx"); err != nil {
			return err
		}
		if _, err := tx.GetIntForUpdate("mx"); err != nil {
			return err
		}
		if tx.WorkerID() < 0 {
			return errors.New("worker id")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsAndHints(t *testing.T) {
	db := Open(Options{})
	defer db.Close()
	db.SplitHint("h", OpMax)
	db.ClearSplitHint("h")
	if db.Internal() == nil {
		t.Fatal("internal engine nil")
	}
	_ = db.Exec(func(tx Tx) error { return tx.Add("x", 1) })
	st := db.Stats()
	if st.Committed == 0 {
		t.Fatalf("stats: %+v", st)
	}
}
