package doppel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// crossPair returns two keys from pool owned by different shards.
func crossPair(t *testing.T, cl *Cluster, pool []string) (string, string) {
	t.Helper()
	for _, a := range pool {
		for _, b := range pool {
			if cl.ShardOf(a) != cl.ShardOf(b) {
				return a, b
			}
		}
	}
	t.Fatal("no cross-shard pair in key pool")
	return "", ""
}

// TestClusterRoutesAndCounts commits one single-shard and one
// cross-shard transaction and checks the router accounted for both: the
// cross-shard body is first attempted on one shard, found foreign
// (a reroute), then committed via 2PC.
func TestClusterRoutesAndCounts(t *testing.T) {
	cl, err := OpenCluster(ClusterOptions{Shards: 3, DB: Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	pool := make([]string, 16)
	for i := range pool {
		pool[i] = fmt.Sprintf("key-%d", i)
	}
	k1, k2 := crossPair(t, cl, pool)

	if err := cl.Exec(func(tx Tx) error { return tx.Add(k1, 5) }); err != nil {
		t.Fatal(err)
	}
	err = cl.Exec(func(tx Tx) error {
		if err := tx.Add(k1, 1); err != nil {
			return err
		}
		return tx.Add(k2, 2)
	})
	if err != nil {
		t.Fatal(err)
	}

	for key, want := range map[string]int64{k1: 6, k2: 2} {
		var got int64
		if err := cl.Exec(func(tx Tx) error {
			n, err := tx.GetInt(key)
			got = n
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s = %d, want %d", key, got, want)
		}
	}
	rs := cl.Stats().Router
	if rs.SingleShard == 0 {
		t.Error("no single-shard commits counted")
	}
	if rs.Reroutes == 0 || rs.CrossShard == 0 {
		t.Errorf("router stats %+v: cross-shard transaction not counted", rs)
	}
}

// equivOp is one step of the randomized equivalence workload, built
// once and replayed identically against a cluster and a single DB.
type equivOp struct {
	kind   int // 0 add, 1 max, 2 min, 3 mult, 4 putint, 5 putbytes, 6 cross read-write
	k1, k2 string
	n      int64
}

func (o equivOp) fn() TxFunc {
	switch o.kind {
	case 0:
		return func(tx Tx) error { return tx.Add(o.k1, o.n) }
	case 1:
		return func(tx Tx) error { return tx.Max(o.k1, o.n) }
	case 2:
		return func(tx Tx) error { return tx.Min(o.k1, o.n) }
	case 3:
		return func(tx Tx) error { return tx.Mult(o.k1, o.n) }
	case 4:
		return func(tx Tx) error { return tx.PutInt(o.k1, o.n) }
	case 5:
		return func(tx Tx) error {
			return tx.PutBytes(o.k1, []byte(fmt.Sprintf("v%d", o.n)))
		}
	default:
		// Cross-shard read-then-write: the amount added to k2 depends on
		// the gathered read of k1, exercising 2PC's read validation.
		return func(tx Tx) error {
			n, err := tx.GetInt(o.k1)
			if err != nil {
				return err
			}
			return tx.Add(o.k2, n%5+o.n)
		}
	}
}

// TestClusterSingleDBEquivalence replays one randomized mixed workload
// — including deliberately cross-shard read-write transactions —
// sequentially against a 3-shard cluster and an embedded single DB, and
// requires the final states to be identical key for key.
func TestClusterSingleDBEquivalence(t *testing.T) {
	mk := func() Options {
		o := Options{Workers: 2, PhaseLength: 5 * time.Millisecond}
		// Keep reads direct: auto-split would stash reads and make the
		// moment a value becomes visible phase-dependent.
		o.Engine.DisableAutoSplit = true
		return o
	}
	cl, err := OpenCluster(ClusterOptions{Shards: 3, DB: mk()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	single := Open(mk())
	defer single.Close()

	intKeys := make([]string, 12)
	for i := range intKeys {
		intKeys[i] = fmt.Sprintf("int-%d", i)
	}
	byteKeys := make([]string, 6)
	for i := range byteKeys {
		byteKeys[i] = fmt.Sprintf("byte-%d", i)
	}

	r := rand.New(rand.NewSource(42))
	var ops []equivOp
	for _, k := range intKeys { // seed so reads always see an integer
		ops = append(ops, equivOp{kind: 4, k1: k, n: 0})
	}
	for i := 0; i < 400; i++ {
		kind := r.Intn(7)
		op := equivOp{kind: kind, n: int64(r.Intn(40) - 10)}
		switch kind {
		case 5:
			op.k1 = byteKeys[r.Intn(len(byteKeys))]
		case 6:
			op.k1 = intKeys[r.Intn(len(intKeys))]
			op.k2 = intKeys[r.Intn(len(intKeys))]
			for cl.ShardOf(op.k2) == cl.ShardOf(op.k1) {
				op.k2 = intKeys[r.Intn(len(intKeys))]
			}
		default:
			op.k1 = intKeys[r.Intn(len(intKeys))]
			if op.kind == 3 && op.n == 0 {
				op.n = 2 // a zero mult erases history on both, trivially equal
			}
		}
		ops = append(ops, op)
	}

	for i, op := range ops {
		if err := cl.Exec(op.fn()); err != nil {
			t.Fatalf("op %d on cluster: %v", i, err)
		}
		if err := single.Exec(op.fn()); err != nil {
			t.Fatalf("op %d on single DB: %v", i, err)
		}
	}

	for _, k := range intKeys {
		var cn, sn int64
		if err := cl.Exec(func(tx Tx) error { n, err := tx.GetInt(k); cn = n; return err }); err != nil {
			t.Fatal(err)
		}
		if err := single.Exec(func(tx Tx) error { n, err := tx.GetInt(k); sn = n; return err }); err != nil {
			t.Fatal(err)
		}
		if cn != sn {
			t.Errorf("%s: cluster %d, single %d", k, cn, sn)
		}
	}
	for _, k := range byteKeys {
		var cb, sb []byte
		if err := cl.Exec(func(tx Tx) error { b, err := tx.GetBytes(k); cb = b; return err }); err != nil {
			t.Fatal(err)
		}
		if err := single.Exec(func(tx Tx) error { b, err := tx.GetBytes(k); sb = b; return err }); err != nil {
			t.Fatal(err)
		}
		if string(cb) != string(sb) {
			t.Errorf("%s: cluster %q, single %q", k, cb, sb)
		}
	}
	if rs := cl.Stats().Router; rs.CrossShard == 0 {
		t.Errorf("router stats %+v: workload never exercised 2PC", rs)
	}
}

// TestClusterConcurrentConservation hammers the cluster with concurrent
// single-shard and cross-shard double-adds and checks conservation:
// every committed add is reflected exactly once, so the keyspace total
// equals the number of adds issued. Run under -race this also exercises
// the 2PC lock ordering and the pooled router frames concurrently.
func TestClusterConcurrentConservation(t *testing.T) {
	cl, err := OpenCluster(ClusterOptions{
		Shards: 3,
		DB:     Options{Workers: 2, PhaseLength: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	pool := make([]string, 12)
	for i := range pool {
		pool[i] = fmt.Sprintf("cons-%d", i)
	}
	k1, k2 := crossPair(t, cl, pool)

	const goroutines = 8
	const perG = 150
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var fn TxFunc
				if i%3 == 0 {
					fn = func(tx Tx) error { // cross-shard: two adds, one txn
						if err := tx.Add(k1, 1); err != nil {
							return err
						}
						return tx.Add(k2, 1)
					}
				} else {
					k := pool[(g+i)%len(pool)]
					fn = func(tx Tx) error { return tx.Add(k, 2) }
				}
				if err := cl.Exec(fn); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every i%3==0 iteration adds 1+1, the rest add 2: 2 per iteration.
	want := int64(goroutines * perG * 2)
	var total int64
	for _, k := range pool {
		if err := cl.Exec(func(tx Tx) error {
			n, err := tx.GetInt(k)
			total += n
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if total != want {
		t.Fatalf("keyspace total %d, want %d", total, want)
	}
	if rs := cl.Stats().Router; rs.CrossShard == 0 {
		t.Errorf("router stats %+v: no cross-shard commits", rs)
	}
}

// TestClusterDurableRoundTrip writes through a durable cluster —
// including a cross-shard transaction — closes it, and recovers a new
// cluster from the per-shard directories.
func TestClusterDurableRoundTrip(t *testing.T) {
	tmpl := filepath.Join(t.TempDir(), "shard-%d")
	const shards = 3
	for i := 0; i < shards; i++ {
		if err := os.MkdirAll(fmt.Sprintf(tmpl, i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := OpenCluster(ClusterOptions{
		Shards: shards,
		DB:     Options{Workers: 1, RedoLog: tmpl},
	})
	if err != nil {
		t.Fatal(err)
	}
	pool := make([]string, 8)
	for i := range pool {
		pool[i] = fmt.Sprintf("dur-%d", i)
	}
	k1, k2 := crossPair(t, cl, pool)
	if err := cl.Exec(func(tx Tx) error { return tx.PutInt(k1, 40) }); err != nil {
		t.Fatal(err)
	}
	if err := cl.Exec(func(tx Tx) error {
		if err := tx.Add(k1, 2); err != nil {
			return err
		}
		return tx.PutBytes(k2, []byte("crossed"))
	}); err != nil {
		t.Fatal(err)
	}
	cl.Close()

	cl2, err := RecoverCluster(tmpl, ClusterOptions{Shards: shards, DB: Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	var n int64
	var b []byte
	if err := cl2.Exec(func(tx Tx) error {
		var err error
		n, err = tx.GetInt(k1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := cl2.Exec(func(tx Tx) error {
		var err error
		b, err = tx.GetBytes(k2)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if n != 42 || string(b) != "crossed" {
		t.Fatalf("recovered %s=%d %s=%q, want 42 and \"crossed\"", k1, n, k2, b)
	}
}

// TestClusterOptionsRejected covers the ClusterOptions validation
// surface: geometry, templates, and per-shard option violations.
func TestClusterOptionsRejected(t *testing.T) {
	if _, err := OpenCluster(ClusterOptions{Shards: -1}); err == nil {
		t.Error("negative Shards accepted")
	}
	if _, err := OpenCluster(ClusterOptions{Shards: 300}); err == nil {
		t.Error("Shards beyond the TID namespace accepted")
	}
	if _, err := OpenCluster(ClusterOptions{
		Shards: 2,
		DB:     Options{RedoLog: filepath.Join(t.TempDir(), "flat")},
	}); err == nil {
		t.Error("cluster RedoLog template missing the verb was accepted")
	}
	if _, err := OpenCluster(ClusterOptions{
		Shards: 2,
		DB:     Options{SyncCommit: true},
	}); !errors.Is(err, ErrRequiresRedoLog) {
		t.Errorf("per-shard option violation = %v, want ErrRequiresRedoLog", err)
	}
	if _, err := RecoverCluster(t.TempDir(), ClusterOptions{Shards: 2}); err == nil {
		t.Error("RecoverCluster dir template missing the verb was accepted")
	}
}

// TestClusterClosedSentinel: every cluster entry point after Close must
// match ErrClosed, exactly as the single-DB surface does.
func TestClusterClosedSentinel(t *testing.T) {
	tmpl := filepath.Join(t.TempDir(), "shard-%d")
	cl, err := OpenCluster(ClusterOptions{
		Shards: 2,
		DB:     Options{Workers: 1, RedoLog: tmpl},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	noop := func(tx Tx) error { return nil }
	if err := cl.Exec(noop); !errors.Is(err, ErrClosed) {
		t.Errorf("Exec after Close = %v, want ErrClosed", err)
	}
	if err := cl.ExecContext(context.Background(), noop); !errors.Is(err, ErrClosed) {
		t.Errorf("ExecContext after Close = %v, want ErrClosed", err)
	}
	got := make(chan error, 1)
	cl.ExecAsync(noop, func(err error) { got <- err })
	if err := <-got; !errors.Is(err, ErrClosed) {
		t.Errorf("ExecAsync after Close = %v, want ErrClosed", err)
	}
	if err := cl.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Errorf("Checkpoint after Close = %v, want ErrClosed", err)
	}
}

// TestClusterExecContextCancel parks the owning shard's only worker and
// cancels a queued cluster transaction: the router must surface the
// context error and abandon (not corrupt) its pooled call frame.
func TestClusterExecContextCancel(t *testing.T) {
	cl, err := OpenCluster(ClusterOptions{Shards: 2, DB: Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const key = "cancel-me"
	shard := cl.ShardOf(key)
	started := make(chan struct{})
	release := make(chan struct{})
	cl.DB(shard).ExecAsync(func(tx Tx) error {
		close(started)
		<-release
		return nil
	}, func(error) {})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- cl.ExecContext(ctx, func(tx Tx) error { return tx.Add(key, 1) })
	}()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ExecContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ExecContext did not return after cancellation")
	}
	close(release)
	// The router must remain usable: the abandoned frame must not poison
	// the pool once the worker finally drains.
	if err := cl.Exec(func(tx Tx) error { return tx.Add("other", 1) }); err != nil {
		t.Fatal(err)
	}
}
