package doppel

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"doppel/internal/repl"
	"doppel/internal/wal"
)

// LogPosition is a durable byte position in a redo-log directory: a
// segment sequence number and an offset within it. Unlike LSNs — which
// are session-local counters — a LogPosition names the same bytes to
// every process reading the directory, so a primary's durable position
// and a replica's applied position are directly comparable; replication
// lag is the distance between them.
type LogPosition = wal.Position

// ParseLogPosition parses the "seq:offset" form LogPosition.String
// renders — the wire shape of a read-your-writes token: a client takes
// the primary's LogPosition after a write, hands the string to a
// follower, and the follower blocks the read with WaitPosition until it
// has applied at least that far.
func ParseLogPosition(s string) (LogPosition, error) {
	var p LogPosition
	if n, err := fmt.Sscanf(s, "%d:%d", &p.Seq, &p.Offset); n != 2 || err != nil {
		return LogPosition{}, fmt.Errorf("doppel: malformed log position %q", s)
	}
	if p.Offset < 0 {
		return LogPosition{}, fmt.Errorf("doppel: malformed log position %q", s)
	}
	return p, nil
}

// FollowerOptions tunes OpenFollower.
type FollowerOptions struct {
	// PollInterval is how often the replica polls the log for new
	// records; values <= 0 mean 1ms. Lag is bounded below by this plus
	// the primary's group-commit latency.
	PollInterval time.Duration
	// RecoveryParallelism caps the goroutines used to decode the
	// bootstrap checkpoint snapshot; values below 1 mean GOMAXPROCS.
	RecoveryParallelism int
	// StateDir, when set, enables follower-side checkpointing: the
	// replica periodically persists its materialized store plus the log
	// position it is consistent with, and a restart with the same
	// StateDir resumes there, replaying only the log suffix written
	// since — bounded work instead of the whole post-snapshot log. The
	// directory is created if needed; it must be distinct from the
	// primary's log directory and private to this replica.
	StateDir string
	// CheckpointEvery is how many applied records between follower
	// checkpoints; <= 0 with StateDir set means 4096.
	CheckpointEvery int
}

// Replica is a read-only database continuously rebuilt from a primary's
// redo-log directory: it bootstraps from the latest checkpoint exactly
// as recovery would, then tails the segments, applying each record
// under the per-key highest-TID-wins rule. Reads run through View at a
// consistent applied-LSN watermark. The primary needs no replication
// configuration — any database with Options.RedoLog set can be
// followed, live or after it has exited.
type Replica struct {
	f      *repl.Follower
	dir    string
	closed atomic.Bool
}

// OpenFollower opens a replica over the redo-log directory at dir. The
// directory may be empty or not yet created — the replica then waits
// for the primary's first append. OpenFollower takes no lock on the
// directory, so any number of replicas can follow one primary.
func OpenFollower(dir string, opts FollowerOptions) (*Replica, error) {
	f, err := repl.Open(dir, repl.Options{
		Poll:            opts.PollInterval,
		Parallelism:     opts.RecoveryParallelism,
		StateDir:        opts.StateDir,
		CheckpointEvery: opts.CheckpointEvery,
	})
	if err != nil {
		return nil, err
	}
	return &Replica{f: f, dir: dir}, nil
}

// View runs fn against the replica frozen at its applied watermark:
// every read inside fn observes the same prefix of the primary's log,
// whole transactions only. It returns the watermark LSN the view ran
// at. Write operations inside fn fail with ErrReadOnly; fn's error is
// returned as-is otherwise.
func (r *Replica) View(fn TxFunc) (uint64, error) {
	if r.closed.Load() {
		return 0, ErrClosed
	}
	return r.f.View(fn)
}

// ExecAsync implements the server backend interface by running fn as a
// View on the caller's goroutine; writes fail with ErrReadOnly. This is
// what lets doppel-server -follow serve the read half of its procedure
// set from a replica unchanged.
func (r *Replica) ExecAsync(fn TxFunc, done func(error)) {
	if r.closed.Load() {
		done(ErrClosed)
		return
	}
	_, err := r.f.View(fn)
	done(err)
}

// AppliedLSN returns the applied-record watermark: how many redo
// records the replica has installed, in log order. Against a primary
// whose log the replica followed from empty, it equals the primary's
// LSN for the same record, so DurableLSN minus AppliedLSN is the
// replication lag in records.
func (r *Replica) AppliedLSN() uint64 { return r.f.AppliedLSN() }

// Position returns the log byte position the replica has applied to;
// compare with the primary's LogPosition.
func (r *Replica) Position() LogPosition { return r.f.Position() }

// WaitPosition blocks until the replica's applied position reaches at
// least pos (typically the primary's LogPosition), the replica fails,
// or ctx expires.
func (r *Replica) WaitPosition(ctx context.Context, pos LogPosition) error {
	return r.f.WaitPosition(ctx, pos)
}

// Err returns the replica's terminal tail failure, if any. A non-nil
// result means applying has stopped for good: sealed-segment or
// manifest corruption the replica will not paper over. Falling behind a
// checkpoint's segment garbage collection is NOT terminal — the replica
// re-bootstraps itself from the newest snapshot automatically (counted
// in ReplicaStats.Rebootstraps).
func (r *Replica) Err() error { return r.f.Err() }

// ReplicaStats is a point-in-time summary of replica progress.
type ReplicaStats struct {
	// AppliedLSN is the applied-record watermark.
	AppliedLSN uint64
	// Position is the applied log byte position.
	Position LogPosition
	// SnapshotEntries is how many records the bootstrap snapshot held.
	SnapshotEntries int
	// Polls counts tail polls; Records counts records applied.
	Polls   uint64
	Records uint64
	// ManifestReads and SegmentOpens count tail I/O beyond the open
	// segment; both stay constant while the replica idles on an
	// unchanged segment.
	ManifestReads uint64
	SegmentOpens  uint64
	// Rebootstraps counts self-heals: times the replica fell behind a
	// checkpoint GC and rebuilt itself from the newest snapshot. The
	// applied watermark is never reset by a re-bootstrap (it undercounts
	// the primary's LSN afterward), and Position stays monotone.
	Rebootstraps uint64
	// Checkpoints counts follower-side checkpoints written to StateDir;
	// Resumed reports whether this replica started from StateDir state
	// instead of a full bootstrap.
	Checkpoints uint64
	Resumed     bool
	// TailError is the terminal tail failure, "" while healthy.
	TailError string
}

// Stats returns replica progress counters.
func (r *Replica) Stats() ReplicaStats {
	s := r.f.Stats()
	return ReplicaStats{
		AppliedLSN:      s.AppliedLSN,
		Position:        s.Position,
		SnapshotEntries: s.SnapshotEntries,
		Polls:           s.Tail.Polls,
		Records:         s.Tail.Records,
		ManifestReads:   s.Tail.ManifestReads,
		SegmentOpens:    s.Tail.SegmentOpens,
		Rebootstraps:    s.Rebootstraps,
		Checkpoints:     s.Checkpoints,
		Resumed:         s.Resumed,
		TailError:       s.Err,
	}
}

// Close stops the replica's tail loop. It does not touch the log.
func (r *Replica) Close() {
	if r.closed.Swap(true) {
		return
	}
	_ = r.f.Close()
}

// Promote turns the replica into a writable database over the same
// directory, in place. It fences out the primary by taking the log
// directory's exclusive lock — failing cleanly, replica intact, if the
// primary still holds it — then drains the log to its end and reopens
// it for appending over the already-materialized store, exactly
// recovery's resume path: reopening trims any torn tail (the "seal"),
// so every acknowledged record survives and logging continues where the
// primary stopped. The replica is consumed: it stops tailing and
// further Views return ErrClosed; use the returned DB. opts.RedoLog is
// overridden with the replica's directory.
//
// Promote assumes a single administrator: between the final drain and
// the returned DB's logger taking over, the directory lock is briefly
// released, so a concurrently restarted primary could slip in. That
// race is operational (two actors deciding to own one directory), not
// one the database can arbitrate.
func (r *Replica) Promote(opts Options) (*DB, error) {
	lock, err := wal.AcquireDirLock(r.dir)
	if err != nil {
		return nil, fmt.Errorf("doppel: promote: primary still owns %s: %w", r.dir, err)
	}
	if r.closed.Swap(true) {
		lock.Release()
		return nil, ErrClosed
	}
	if _, err := r.f.Drain(); err != nil {
		lock.Release()
		return nil, fmt.Errorf("doppel: promote: drain: %w", err)
	}
	lock.Release()
	opts.RedoLog = r.dir
	db, err := openInto(opts, r.f.Store())
	if err != nil {
		return nil, err
	}
	return db, nil
}
