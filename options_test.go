package doppel

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestOptionsValidateMatrix exercises every option that demands a
// durability directory, alone and combined: each violation must match
// ErrRequiresRedoLog via errors.Is and name the offending option.
func TestOptionsValidateMatrix(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"CheckpointEvery", Options{CheckpointEvery: time.Second}},
		{"MaxSegmentBytes", Options{MaxSegmentBytes: 1 << 20}},
		{"CheckpointFrameBuffer", Options{CheckpointFrameBuffer: 64}},
		{"SyncCommit", Options{SyncCommit: true}},
		{"ScrubEvery", Options{ScrubEvery: time.Minute}},
		{"WALFailStop", Options{WALFailStop: true}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.opts.Validate()
			if !errors.Is(err, ErrRequiresRedoLog) {
				t.Fatalf("Validate() = %v, want ErrRequiresRedoLog", err)
			}
			if !strings.Contains(err.Error(), c.name) {
				t.Fatalf("Validate() = %q, does not name %s", err, c.name)
			}
			// The same combination with a RedoLog is consistent.
			withLog := c.opts
			withLog.RedoLog = "somewhere"
			if err := withLog.Validate(); err != nil {
				t.Fatalf("Validate() with RedoLog = %v", err)
			}
		})
	}
}

// TestOptionsValidateReportsEveryViolation sets every RedoLog-requiring
// option plus a negative worker count at once and requires all seven
// violations in one error, not just the first.
func TestOptionsValidateReportsEveryViolation(t *testing.T) {
	opts := Options{
		Workers:               -2,
		CheckpointEvery:       time.Second,
		MaxSegmentBytes:       1,
		CheckpointFrameBuffer: 8,
		SyncCommit:            true,
		ScrubEvery:            time.Minute,
		WALFailStop:           true,
	}
	err := opts.Validate()
	if !errors.Is(err, ErrRequiresRedoLog) {
		t.Fatalf("Validate() = %v, want ErrRequiresRedoLog", err)
	}
	for _, want := range []string{
		"CheckpointEvery", "MaxSegmentBytes", "CheckpointFrameBuffer",
		"SyncCommit", "ScrubEvery", "WALFailStop", "Workers",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Validate() = %q, missing violation %s", err, want)
		}
	}
}

func TestOptionsValidateAccepts(t *testing.T) {
	for _, opts := range []Options{
		{},
		{Workers: 8, PhaseLength: time.Millisecond},
		{RedoLog: "dir", CheckpointEvery: time.Second, MaxSegmentBytes: 1,
			CheckpointFrameBuffer: 1, SyncCommit: true, WALFailStop: true},
	} {
		if err := opts.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", opts, err)
		}
	}
}

// TestOpenErrRejectsInvalidOptions: the validation runs at open time
// too, so a misconfigured database is refused rather than built.
func TestOpenErrRejectsInvalidOptions(t *testing.T) {
	db, err := OpenErr(Options{SyncCommit: true})
	if db != nil {
		db.Close()
	}
	if !errors.Is(err, ErrRequiresRedoLog) {
		t.Fatalf("OpenErr = %v, want ErrRequiresRedoLog", err)
	}
}

// TestClosedDatabaseSentinel drives every post-Close entry point and
// requires each failure to match ErrClosed via errors.Is.
func TestClosedDatabaseSentinel(t *testing.T) {
	db, err := OpenErr(Options{Workers: 1, RedoLog: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(func(tx Tx) error { return tx.Add("k", 1) }); err != nil {
		t.Fatal(err)
	}
	db.Close()

	noop := func(tx Tx) error { return nil }
	if err := db.Exec(noop); !errors.Is(err, ErrClosed) {
		t.Errorf("Exec after Close = %v, want ErrClosed", err)
	}
	if err := db.ExecContext(context.Background(), noop); !errors.Is(err, ErrClosed) {
		t.Errorf("ExecContext after Close = %v, want ErrClosed", err)
	}
	got := make(chan error, 1)
	db.ExecAsync(noop, func(err error) { got <- err })
	if err := <-got; !errors.Is(err, ErrClosed) {
		t.Errorf("ExecAsync after Close = %v, want ErrClosed", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Errorf("Checkpoint after Close = %v, want ErrClosed", err)
	}
}

func TestCheckpointWithoutRedoLog(t *testing.T) {
	db := Open(Options{Workers: 1})
	defer db.Close()
	if err := db.Checkpoint(); !errors.Is(err, ErrRequiresRedoLog) {
		t.Fatalf("Checkpoint = %v, want ErrRequiresRedoLog", err)
	}
}

// TestOpenExistingLogDir: Open on a directory that already holds a log
// must refuse with ErrLogExists; Recover on it must succeed.
func TestOpenExistingLogDir(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenErr(Options{Workers: 1, RedoLog: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(func(tx Tx) error { return tx.PutInt("survivor", 7) }); err != nil {
		t.Fatal(err)
	}
	db.Close()

	if _, err := OpenErr(Options{Workers: 1, RedoLog: dir}); !errors.Is(err, ErrLogExists) {
		t.Fatalf("OpenErr on existing log = %v, want ErrLogExists", err)
	}
	db2, err := Recover(dir, Options{Workers: 1, RedoLog: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	err = db2.Exec(func(tx Tx) error {
		n, err := tx.GetInt("survivor")
		if err != nil {
			return err
		}
		if n != 7 {
			t.Errorf("survivor = %d, want 7", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExecContextCancelWhileQueued blocks the only worker, queues a
// cancellable transaction behind it, and cancels: ExecContext must
// return the context's error without waiting for the worker.
func TestExecContextCancelWhileQueued(t *testing.T) {
	db := Open(Options{Workers: 1})
	defer db.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	hold := make(chan error, 1)
	db.ExecAsync(func(tx Tx) error {
		close(started)
		<-release
		return nil
	}, func(err error) { hold <- err })
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- db.ExecContext(ctx, func(tx Tx) error { return nil })
	}()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ExecContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ExecContext did not return after cancellation")
	}
	close(release)
	if err := <-hold; err != nil {
		t.Fatal(err)
	}
}

// TestExecContextPreCancelled: a context cancelled before the call may
// race the queue send, but the return must still be the context's error
// while a worker is busy.
func TestExecContextPreCancelled(t *testing.T) {
	db := Open(Options{Workers: 1})
	defer db.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	db.ExecAsync(func(tx Tx) error {
		close(started)
		<-release
		return nil
	}, func(error) {})
	<-started
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := db.ExecContext(ctx, func(tx Tx) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecContext = %v, want context.Canceled", err)
	}
}
