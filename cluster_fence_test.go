package doppel

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fenceStress races single-shard read-modify-write incrementers against
// cross-shard transfer transactions over one shared key pool and
// returns the final sum of the pool, the expected sum, and the cluster
// stats. Incrementers use GetInt+PutInt — a non-commutative RMW, the
// classic lost-update detector: an increment silently overwritten by a
// cross-shard Put shrinks the final sum. Transfers move an amount
// between two keys on different shards with blind Puts computed from
// gathered reads, conserving the pool's sum — so with both workloads
// racing, sum(pool) == totalIncrements exactly iff no update was lost
// and no transfer applied partially.
func fenceStress(t *testing.T, noFences bool) (got, want int64, stats ClusterStats) {
	t.Helper()
	cl, err := OpenCluster(ClusterOptions{Shards: 3, DB: Options{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.router.NoFences = noFences

	pool := make([]string, 8)
	for i := range pool {
		pool[i] = fmt.Sprintf("fence-key-%d", i)
	}
	// Seed every key so transfers always see integers.
	for _, k := range pool {
		if err := cl.Exec(func(tx Tx) error { return tx.PutInt(k, 0) }); err != nil {
			t.Fatal(err)
		}
	}

	const (
		incrementers  = 4
		incrementsPer = 400
		transferers   = 2
		transfersPer  = 200
	)
	var (
		wg           sync.WaitGroup
		transferErrs atomic.Int64
	)
	for g := 0; g < incrementers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < incrementsPer; i++ {
				k := pool[rng.Intn(len(pool))]
				if err := cl.Exec(func(tx Tx) error {
					n, err := tx.GetInt(k)
					if err != nil {
						return err
					}
					return tx.PutInt(k, n+1)
				}); err != nil {
					t.Errorf("incrementer: %v", err)
					return
				}
			}
		}(int64(g))
	}
	for g := 0; g < transferers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < transfersPer; i++ {
				a := pool[rng.Intn(len(pool))]
				b := pool[rng.Intn(len(pool))]
				if cl.ShardOf(a) == cl.ShardOf(b) {
					continue
				}
				amt := int64(rng.Intn(3) + 1)
				err := cl.Exec(func(tx Tx) error {
					x, err := tx.GetInt(a)
					if err != nil {
						return err
					}
					y, err := tx.GetInt(b)
					if err != nil {
						return err
					}
					if err := tx.PutInt(a, x-amt); err != nil {
						return err
					}
					return tx.PutInt(b, y+amt)
				})
				if err != nil {
					// Only the unfenced mode may fail a commit (a partial
					// apply surfaces as an error); with fences on this is a
					// test failure, checked by the caller via stats.
					transferErrs.Add(1)
				}
			}
		}(int64(g))
	}
	wg.Wait()

	var sum int64
	for _, k := range pool {
		var n int64
		if err := cl.Exec(func(tx Tx) error {
			v, err := tx.GetInt(k)
			n = v
			return err
		}); err != nil {
			t.Fatal(err)
		}
		sum += n
	}
	stats = cl.Stats()
	if !noFences && transferErrs.Load() != 0 {
		t.Errorf("fenced mode: %d transfers failed; cross-shard commits must not fail with fences on", transferErrs.Load())
	}
	return sum, incrementers * incrementsPer, stats
}

// TestClusterFenceConservation is the race-enabled conservation stress:
// with commit fences on, no single-shard increment may be lost to a
// cross-shard transfer's prepare→apply window, and the
// CrossShardApplyLost invariant counter must stay zero across the whole
// run.
func TestClusterFenceConservation(t *testing.T) {
	got, want, stats := fenceStress(t, false)
	if got != want {
		t.Errorf("conservation violated: pool sums to %d, want %d (lost %d updates)", got, want, want-got)
	}
	if n := stats.Router.CrossShardApplyLost; n != 0 {
		t.Errorf("CrossShardApplyLost = %d, want 0 (fence invariant violated)", n)
	}
	if stats.Router.CrossShard == 0 {
		t.Error("no cross-shard commits: the stress did not exercise 2PC")
	}
	if stats.Router.FencedKeys == 0 {
		t.Error("FencedKeys = 0: prepare installed no fences")
	}
}

// TestClusterFenceDisabledLosesUpdates demonstrates the bug the fences
// close: with NoFences set, the prepare→apply window reopens and the
// same stress loses updates (a shrunken sum, a partial apply counted in
// CrossShardApplyLost, or both). The window is a narrow race, so a run
// that happens not to provoke it skips rather than fails.
func TestClusterFenceDisabledLosesUpdates(t *testing.T) {
	for attempt := 0; attempt < 3; attempt++ {
		got, want, stats := fenceStress(t, true)
		if got != want || stats.Router.CrossShardApplyLost > 0 {
			t.Logf("unfenced run lost updates as expected: sum %d (want %d), apply-lost %d",
				got, want, stats.Router.CrossShardApplyLost)
			return
		}
	}
	t.Skip("unfenced lost-update window not provoked in 3 runs (timing-dependent)")
}

// TestFenceSplitRace stresses the classifier-vs-prepare boundary the
// publication-time fence filter closes: phase changes are forced at
// millisecond cadence while every pool key is simultaneously (a) a
// hinted split candidate hammered with commutative Adds and (b) fenced
// by cross-shard transfers. If a split-set publication ever admits a
// key holding a live fence, reconciliation merges the key's slices
// inside the commit's prepare→apply window — which breaks conservation
// or trips CrossShardApplyLost. Both must stay exact across thousands
// of phase transitions.
func TestFenceSplitRace(t *testing.T) {
	cl, err := OpenCluster(ClusterOptions{
		Shards: 3,
		DB:     Options{Workers: 2, PhaseLength: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	pool := make([]string, 8)
	for i := range pool {
		pool[i] = fmt.Sprintf("split-race-%d", i)
		if err := cl.Exec(func(tx Tx) error { return tx.PutInt(pool[i], 0) }); err != nil {
			t.Fatal(err)
		}
		// Every key is a permanent split candidate, so each joined→split
		// transition builds a set containing exactly the keys the
		// transfers are fencing.
		cl.SplitHint(pool[i], OpAdd)
	}

	const (
		adders       = 4
		addsPer      = 300
		transferers  = 2
		transfersPer = 150
	)
	var wg sync.WaitGroup
	for g := 0; g < adders; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < addsPer; i++ {
				k := pool[rng.Intn(len(pool))]
				if err := cl.Exec(func(tx Tx) error { return tx.Add(k, 1) }); err != nil {
					t.Errorf("adder: %v", err)
					return
				}
			}
		}(int64(g))
	}
	var transferErrs atomic.Int64
	for g := 0; g < transferers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(200 + seed))
			for i := 0; i < transfersPer; i++ {
				a := pool[rng.Intn(len(pool))]
				b := pool[rng.Intn(len(pool))]
				if cl.ShardOf(a) == cl.ShardOf(b) {
					continue
				}
				amt := int64(rng.Intn(3) + 1)
				err := cl.Exec(func(tx Tx) error {
					x, err := tx.GetInt(a)
					if err != nil {
						return err
					}
					y, err := tx.GetInt(b)
					if err != nil {
						return err
					}
					if err := tx.PutInt(a, x-amt); err != nil {
						return err
					}
					return tx.PutInt(b, y+amt)
				})
				if err != nil {
					transferErrs.Add(1)
				}
			}
		}(int64(g))
	}
	wg.Wait()

	var sum int64
	for _, k := range pool {
		if err := cl.Exec(func(tx Tx) error {
			n, err := tx.GetInt(k)
			sum += n
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	stats := cl.Stats()
	if want := int64(adders * addsPer); sum != want {
		t.Errorf("conservation violated across split phases: pool sums to %d, want %d (lost %d)", sum, want, want-sum)
	}
	if n := stats.Router.CrossShardApplyLost; n != 0 {
		t.Errorf("CrossShardApplyLost = %d, want 0 (a fenced key entered a split set)", n)
	}
	if n := transferErrs.Load(); n != 0 {
		t.Errorf("%d cross-shard transfers failed; with fences on every transfer must retry to success", n)
	}
	var phaseChanges, mergeFailures uint64
	for _, s := range stats.Shards {
		phaseChanges += s.PhaseChanges
		mergeFailures += s.MergeFailures
	}
	if phaseChanges == 0 {
		t.Error("no phase changes: the stress never exercised split-set publication")
	}
	if mergeFailures != 0 {
		t.Errorf("MergeFailures = %d, want 0", mergeFailures)
	}
	if stats.Router.CrossShard == 0 {
		t.Error("no cross-shard commits: the stress did not exercise 2PC")
	}
}

// TestStatsFenceCounters checks the fence counters surface through the
// public stats types end to end.
func TestStatsFenceCounters(t *testing.T) {
	_, _, stats := fenceStress(t, false)
	var aborts uint64
	for _, s := range stats.Shards {
		aborts += s.FenceAborts
	}
	// FenceAborts is timing-dependent (a single-shard txn must collide
	// with a fenced key), so only log it; the field existing and merging
	// is what this test pins.
	t.Logf("fence aborts across shards: %d; fenced keys: %d", aborts, stats.Router.FencedKeys)
	if !strings.Contains(fmt.Sprintf("%+v", stats.Router), "FencedKeys") {
		t.Error("RouterStats does not expose FencedKeys")
	}
}
