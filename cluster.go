package doppel

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"doppel/internal/core"
	"doppel/internal/metrics"
	"doppel/internal/router"
	"doppel/internal/store"
)

// Partitioner maps keys to shards; see OpenCluster. Implementations
// must be pure and safe for concurrent use, and — for a durable cluster
// — stable across restarts, so each shard's log replays into the shard
// that wrote it.
type Partitioner = router.Partitioner

// HashPartitioner is the default Partitioner: FNV-1a over the key,
// stable across processes and restarts.
type HashPartitioner = router.HashPartitioner

// RouterStats counts a cluster's routing activity.
type RouterStats struct {
	// SingleShard is transactions that ran whole on one shard's
	// embedded fast path — the common case.
	SingleShard uint64
	// Reroutes is single-shard attempts that touched a second shard's
	// key mid-execution and re-ran on the cross-shard path. The aborted
	// attempt had no effects.
	Reroutes uint64
	// CrossShard is transactions committed via two-phase commit.
	CrossShard uint64
	// CrossShardRetries is 2PC rounds re-run because prepare found a
	// gathered read stale.
	CrossShardRetries uint64
	// CrossShardAborts is cross-shard transactions that ended with the
	// body's own error.
	CrossShardAborts uint64
	// CrossShardApplyLost is per-shard commit applications that failed
	// after prepare validated. Commit fences make this unreachable by
	// construction; it remains as an invariant counter — non-zero means
	// the fence protocol was violated (see internal/router).
	CrossShardApplyLost uint64
	// FencedKeys is per-key commit-fence installations: each cross-shard
	// commit round fences every key it touches for the prepare→apply
	// window, making the commit atomic against single-shard traffic.
	FencedKeys uint64
}

// ClusterStats is a point-in-time summary of cluster activity.
type ClusterStats struct {
	// Shards holds each shard database's Stats, indexed by shard ID.
	Shards []Stats
	// Router counts how transactions were routed.
	Router RouterStats
}

// ClusterOptions configures OpenCluster.
type ClusterOptions struct {
	// Shards is the number of shard databases. 0 means 1 (a cluster of
	// one routes everything to its only shard). The maximum is 256 —
	// every shard needs at least one worker ID from the cluster's
	// shared 8-bit TID namespace.
	Shards int
	// Partitioner maps keys to shards; nil means HashPartitioner.
	Partitioner Partitioner
	// DB configures each shard database. DB.Workers is the PER-SHARD
	// worker count (0 means 4): the cluster runs Shards×Workers workers
	// in total, capped at 256 cluster-wide (each shard's TIDs embed
	// worker IDs from a disjoint slice of one 8-bit namespace; see
	// internal/core). When the total would exceed the cap, the
	// per-shard count is reduced. DB.RedoLog, when set, must be a
	// per-shard template containing a %d verb ("data/shard-%d"): each
	// shard logs and checkpoints into its own directory.
	DB Options
}

// resolve validates the cluster options and returns the effective shard
// count and per-shard Options (worker count resolved, RedoLog still a
// template).
func (o ClusterOptions) resolve() (int, Options, error) {
	shards := o.Shards
	if shards == 0 {
		shards = 1
	}
	var errs []error
	if shards < 0 {
		errs = append(errs, fmt.Errorf("doppel: negative Shards (%d)", o.Shards))
	}
	if shards > core.MaxWorkers {
		errs = append(errs, fmt.Errorf("doppel: Shards (%d) exceeds the %d-worker TID namespace", o.Shards, core.MaxWorkers))
	}
	if o.DB.RedoLog != "" && strings.Count(o.DB.RedoLog, "%d") != 1 {
		errs = append(errs, fmt.Errorf("doppel: cluster RedoLog %q must be a per-shard template containing %%d exactly once", o.DB.RedoLog))
	}
	if err := o.DB.Validate(); err != nil {
		errs = append(errs, err)
	}
	if err := errors.Join(errs...); err != nil {
		return 0, Options{}, err
	}
	db := o.DB
	if db.Workers <= 0 {
		db.Workers = 4
	}
	if db.Workers*shards > core.MaxWorkers {
		db.Workers = core.MaxWorkers / shards
		if db.Workers < 1 {
			db.Workers = 1
		}
	}
	return shards, db, nil
}

// Cluster partitions the keyspace across independent shard databases,
// each a full DB with its own worker pool, phase coordinator and
// (optionally) durability directory. Transactions whose keys live on
// one shard — the common case — run on that shard's embedded fast path
// with no cross-shard coordination; transactions that span shards run
// under a minimal two-phase commit (see internal/router for the
// protocol and its isolation caveats). All methods are safe for
// concurrent use.
type Cluster struct {
	dbs    []*DB
	router *router.Router
	stats  *metrics.RouterStats
}

// OpenCluster creates the shard databases and the router over them. On
// any shard failing to open, already-opened shards are closed and the
// error returned.
func OpenCluster(opts ClusterOptions) (*Cluster, error) {
	return buildCluster(opts, func(o Options, shard int) (*DB, error) {
		if o.RedoLog != "" {
			o.RedoLog = fmt.Sprintf(o.RedoLog, shard)
		}
		return OpenErr(o)
	})
}

// RecoverCluster rebuilds a cluster from the per-shard durability
// directories named by the template dir (which must contain a %d verb,
// as OpenCluster's RedoLog does): shard i recovers from
// fmt.Sprintf(dir, i), exactly as Recover rebuilds a single DB. The
// cluster geometry must match the one that wrote the directories — the
// same shard count and an equivalent Partitioner — or keys recover into
// shards that no longer own them. Unless opts.DB.RedoLog names a
// different template, logging resumes into the recovered directories.
func RecoverCluster(dir string, opts ClusterOptions) (*Cluster, error) {
	if strings.Count(dir, "%d") != 1 {
		return nil, fmt.Errorf("doppel: RecoverCluster dir %q must be a per-shard template containing %%d exactly once", dir)
	}
	if opts.DB.RedoLog == "" {
		opts.DB.RedoLog = dir
	}
	return buildCluster(opts, func(o Options, shard int) (*DB, error) {
		o.RedoLog = fmt.Sprintf(o.RedoLog, shard)
		return Recover(fmt.Sprintf(dir, shard), o)
	})
}

func buildCluster(opts ClusterOptions, open func(Options, int) (*DB, error)) (*Cluster, error) {
	shards, dbOpts, err := opts.resolve()
	if err != nil {
		return nil, err
	}
	dbs := make([]*DB, shards)
	for i := range dbs {
		o := dbOpts
		o.workerIDBase = i * dbOpts.Workers
		db, err := open(o, i)
		if err != nil {
			for _, prev := range dbs[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("doppel: shard %d: %w", i, err)
		}
		dbs[i] = db
	}
	backends := make([]router.Shard, shards)
	for i, db := range dbs {
		backends[i] = shardBackend{db}
	}
	stats := &metrics.RouterStats{}
	return &Cluster{
		dbs:    dbs,
		router: router.New(backends, opts.Partitioner, stats),
		stats:  stats,
	}, nil
}

// shardBackend adapts a shard *DB to the router.Shard surface: the
// Exec methods pass through, and the record-level accessors the
// cross-shard prepare needs (the store for fence install and validation
// snapshots, the split-phase check) reach into the shard's engine. The
// wrapper keeps those accessors off DB's public API.
type shardBackend struct {
	db *DB
}

func (b shardBackend) ExecContext(ctx context.Context, fn TxFunc) error {
	return b.db.ExecContext(ctx, fn)
}

func (b shardBackend) ExecAsync(fn TxFunc, done func(error)) {
	b.db.ExecAsync(fn, done)
}

func (b shardBackend) Store() *store.Store { return b.db.eng.Store() }

func (b shardBackend) SplitActive(key string) bool { return b.db.eng.SplitActive(key) }

// Exec runs fn as a transaction over the cluster's whole keyspace and
// returns once it has committed; semantics match DB.Exec, plus routing.
// Exec is exactly ExecContext(context.Background(), fn).
func (c *Cluster) Exec(fn TxFunc) error {
	return c.router.ExecContext(context.Background(), fn)
}

// ExecContext is Exec with cancellation, with DB.ExecContext's
// contract: cancellation is honored while the transaction waits in a
// shard's queue and between cross-shard retry rounds; once an execution
// attempt has begun it runs to completion.
func (c *Cluster) ExecContext(ctx context.Context, fn TxFunc) error {
	return c.router.ExecContext(ctx, fn)
}

// ExecAsync submits fn and returns without waiting; done is called
// exactly once with the outcome, with DB.ExecAsync's constraints. A
// transaction that proves cross-shard completes on a background
// goroutine rather than a shard worker.
func (c *Cluster) ExecAsync(fn TxFunc, done func(error)) {
	c.router.ExecAsync(fn, done)
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.dbs) }

// ShardOf returns the shard that owns key.
func (c *Cluster) ShardOf(key string) int { return c.router.ShardOf(key) }

// DB returns shard i's database, for stats, tests and benchmarks.
// Executing transactions directly on it bypasses the router: safe for
// keys the shard owns, corrupting for keys it does not.
func (c *Cluster) DB(i int) *DB { return c.dbs[i] }

// SplitHint labels key as split data for op on the shard that owns it;
// see DB.SplitHint.
func (c *Cluster) SplitHint(key string, op OpKind) {
	c.dbs[c.router.ShardOf(key)].SplitHint(key, op)
}

// ClearSplitHint removes a manual label.
func (c *Cluster) ClearSplitHint(key string) {
	c.dbs[c.router.ShardOf(key)].ClearSplitHint(key)
}

// Stats returns per-shard statistics plus the router's counters.
func (c *Cluster) Stats() ClusterStats {
	s := ClusterStats{Shards: make([]Stats, len(c.dbs))}
	for i, db := range c.dbs {
		s.Shards[i] = db.Stats()
	}
	snap := c.stats.Snapshot()
	s.Router = RouterStats{
		SingleShard:         snap.SingleShard,
		Reroutes:            snap.Reroutes,
		CrossShard:          snap.CrossShard,
		CrossShardRetries:   snap.CrossShardRetries,
		CrossShardAborts:    snap.CrossShardAborts,
		CrossShardApplyLost: snap.CrossShardApplyLost,
		FencedKeys:          snap.FencedKeys,
	}
	return s
}

// Checkpoint checkpoints every shard (each at its own quiesced phase
// boundary; the per-shard snapshots are not mutually consistent for
// in-flight cross-shard transactions). Requires a RedoLog template.
func (c *Cluster) Checkpoint() error {
	var errs []error
	for i, db := range c.dbs {
		if err := db.Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Close stops every shard. The cluster must not be used after Close;
// in-flight Execs drain first, as with DB.Close.
func (c *Cluster) Close() {
	for _, db := range c.dbs {
		db.Close()
	}
}
