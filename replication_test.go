package doppel

// Replication tests: the primary/follower equivalence harness (the
// follower must converge to byte-equal store contents, TIDs included,
// under a mixed split/joined workload), watermark read consistency,
// promotion, and checkpoint-bootstrapped catch-up.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"doppel/internal/store"
)

// dumpStore renders every populated record as "tid:hex(value)" so two
// stores can be compared byte-for-byte, TIDs included. Records with a
// nil value are skipped: the primary's store grows empty placeholder
// records for keys that were only ever read (reads are not logged), and
// the follower legitimately never hears of those.
func dumpStore(st *store.Store) map[string]string {
	out := map[string]string{}
	st.Range(func(k string, r *store.Record) bool {
		v := r.Value()
		if v == nil {
			return true
		}
		tid, _ := r.TIDWord()
		out[k] = fmt.Sprintf("%d:%x", tid, store.EncodeValue(v))
		return true
	})
	return out
}

// diffStores reports every key where a and b disagree.
func diffStores(t *testing.T, want, got map[string]string) {
	t.Helper()
	for k, w := range want {
		if g, ok := got[k]; !ok {
			t.Errorf("follower missing %q (primary has %s)", k, w)
		} else if g != w {
			t.Errorf("%q: follower %s, primary %s", k, g, w)
		}
	}
	for k, g := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("follower has %q=%s the primary does not", k, g)
		}
	}
}

// waitCaughtUp waits until the replica reaches the primary's final log
// position (call after db.Close so the position is the log's true end).
func waitCaughtUp(t *testing.T, rep *Replica, pos LogPosition) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := rep.WaitPosition(ctx, pos); err != nil {
		t.Fatalf("follower never reached %s (at %s): %v", pos, rep.Position(), err)
	}
}

// TestReplicationEquivalenceRandom is the equivalence harness: four
// goroutines drive a mixed workload — contended INCR and MAX on split
// keys, LIKE-style two-record transactions, plain puts, reads — with
// segment rotations forced by a small byte budget, while a follower
// tails the log. After the primary closes and the follower drains to
// the primary's final durable position, the two stores must be
// byte-equal, TIDs included.
func TestReplicationEquivalenceRandom(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenErr(Options{Workers: 4, RedoLog: dir, MaxSegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := OpenFollower(dir, FollowerOptions{PollInterval: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	const hot, hiwater = "hot:incr", "hot:max"
	db.SplitHint(hot, OpAdd)
	db.SplitHint(hiwater, OpMax)
	ops := 400
	if testing.Short() {
		ops = 120
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*7919 + 1))
			for i := 0; i < ops; i++ {
				var err error
				switch rng.Intn(6) {
				case 0:
					err = db.Exec(func(tx Tx) error { return tx.Add(hot, 1) })
				case 1:
					n := int64(rng.Intn(1000))
					err = db.Exec(func(tx Tx) error { return tx.Max(hiwater, n) })
				case 2:
					// LIKE: bump the page counter, remember the user's last like.
					user := fmt.Sprintf("user:%d", rng.Intn(50))
					page := fmt.Sprintf("page:%d", rng.Intn(20))
					err = db.Exec(func(tx Tx) error {
						if err := tx.Add("likes:"+page, 1); err != nil {
							return err
						}
						return tx.PutBytes(user, []byte(page))
					})
				case 3:
					k := fmt.Sprintf("k:%d", rng.Intn(200))
					n := int64(i)
					err = db.Exec(func(tx Tx) error { return tx.PutInt(k, n) })
				case 4:
					k := fmt.Sprintf("k:%d", rng.Intn(200))
					err = db.Exec(func(tx Tx) error { _, err := tx.GetInt(k); return err })
				case 5:
					err = db.Exec(func(tx Tx) error { _, err := tx.GetInt(hot); return err })
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	db.Close() // reconciles split slices, drains stashes, flushes the log
	waitCaughtUp(t, rep, db.LogPosition())

	if db.DurableLSN() == 0 || rep.AppliedLSN() != db.DurableLSN() {
		t.Fatalf("applied %d records, primary logged %d", rep.AppliedLSN(), db.DurableLSN())
	}
	diffStores(t, dumpStore(db.Internal().Store()), dumpStore(rep.f.Store()))
	if s := rep.Stats(); s.SegmentOpens < 2 {
		t.Fatalf("workload sealed segments but the follower opened %d", s.SegmentOpens)
	}
}

// TestReplicaWatermarkReads: with a single worker and SyncCommit, write
// i to key "k" is exactly the record with LSN i — so a View that reads
// value v and reports watermark L proves the invariant v <= L: a read
// at watermark L never observes a write the log positions after L.
func TestReplicaWatermarkReads(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenErr(Options{Workers: 1, RedoLog: dir, SyncCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rep, err := OpenFollower(dir, FollowerOptions{PollInterval: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	stop := make(chan struct{})
	var readerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var v int64
			lsn, err := rep.View(func(tx Tx) error {
				var e error
				v, e = tx.GetInt("k")
				return e
			})
			if err != nil {
				readerErr = err
				return
			}
			if v > int64(lsn) {
				readerErr = fmt.Errorf("view at watermark %d observed value %d, written by LSN %d", lsn, v, v)
				return
			}
		}
	}()
	writes := 300
	if testing.Short() {
		writes = 100
	}
	for i := 1; i <= writes; i++ {
		n := int64(i)
		if err := db.Exec(func(tx Tx) error { return tx.PutInt("k", n) }); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}
}

// TestReplicaPromotion: promotion fails cleanly while the primary is
// alive; after the primary exits, the promoted DB holds every record,
// accepts writes, and a fresh follower catches up from its log.
func TestReplicaPromotion(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenErr(Options{Workers: 2, RedoLog: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		k, n := fmt.Sprintf("a:%d", i), int64(i)
		if err := db.Exec(func(tx Tx) error { return tx.PutInt(k, n) }); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := OpenFollower(dir, FollowerOptions{PollInterval: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}

	// The primary holds the directory lock: promotion must fail and
	// leave the replica tailing.
	if _, err := rep.Promote(Options{Workers: 2}); err == nil {
		t.Fatal("promotion succeeded while the primary owns the log")
	}
	if _, err := rep.View(func(tx Tx) error { return nil }); err != nil {
		t.Fatalf("failed promotion broke the replica: %v", err)
	}

	db.Close()
	waitCaughtUp(t, rep, db.LogPosition())
	pdb, err := rep.Promote(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pdb.Close()
	// The replica is consumed.
	if _, err := rep.View(func(tx Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("view on promoted replica = %v, want ErrClosed", err)
	}
	// The promoted DB has the data and takes writes, logging in place.
	if err := pdb.Exec(func(tx Tx) error {
		n, err := tx.GetInt("a:7")
		if err != nil || n != 7 {
			return fmt.Errorf("a:7 = %d, %v", n, err)
		}
		return tx.PutInt("b", 42)
	}); err != nil {
		t.Fatal(err)
	}

	// A fresh follower on the same directory sees both generations.
	rep2, err := OpenFollower(dir, FollowerOptions{PollInterval: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var a7, b int64
		if _, err := rep2.View(func(tx Tx) error {
			var e error
			if a7, e = tx.GetInt("a:7"); e != nil {
				return e
			}
			b, e = tx.GetInt("b")
			return e
		}); err != nil {
			t.Fatal(err)
		}
		if a7 == 7 && b == 42 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fresh follower stuck: a:7=%d b=%d", a7, b)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFollowerCatchUpFromCheckpoint: a follower opened after the
// primary checkpointed must bootstrap from the snapshot (not replay the
// GC'd prefix) and still converge to equal contents.
func TestFollowerCatchUpFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenErr(Options{Workers: 2, RedoLog: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k, n := fmt.Sprintf("pre:%d", i), int64(i)
		if err := db.Exec(func(tx Tx) error { return tx.PutInt(k, n) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		k, n := fmt.Sprintf("post:%d", i), int64(i)
		if err := db.Exec(func(tx Tx) error { return tx.PutInt(k, n) }); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	rep, err := OpenFollower(dir, FollowerOptions{PollInterval: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if s := rep.Stats(); s.SnapshotEntries == 0 {
		t.Fatal("follower did not bootstrap from the checkpoint snapshot")
	}
	waitCaughtUp(t, rep, db.LogPosition())
	diffStores(t, dumpStore(db.Internal().Store()), dumpStore(rep.f.Store()))
}

// TestFollowerRebootstrapAfterGC makes the follower fall behind a
// checkpoint's segment garbage collection and verifies it self-heals:
// the tail hits ErrTailGCed, the follower rebuilds from the newest
// snapshot without manual intervention, Position never regresses, and
// the stores converge.
func TestFollowerRebootstrapAfterGC(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenErr(Options{Workers: 2, RedoLog: dir, MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	// A slow poll gives the primary whole GC cycles between follower
	// reads, so the follower's current segment reliably vanishes.
	rep, err := OpenFollower(dir, FollowerOptions{PollInterval: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	lastPos := rep.Position()
	deadline := time.Now().Add(15 * time.Second)
	round := 0
	for rep.Stats().Rebootstraps == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no rebootstrap after %d GC rounds (follower at %s)", round, rep.Position())
		}
		for i := 0; i < 40; i++ {
			k := fmt.Sprintf("k:%d:%d", round, i)
			if err := db.Exec(func(tx Tx) error { return tx.PutBytes(k, make([]byte, 64)) }); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if p := rep.Position(); p.Less(lastPos) {
			t.Fatalf("follower position regressed: %s -> %s", lastPos, p)
		} else {
			lastPos = p
		}
		round++
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("rebootstrap left a terminal error: %v", err)
	}
	db.Close()
	waitCaughtUp(t, rep, db.LogPosition())
	if p := rep.Position(); p.Less(lastPos) {
		t.Fatalf("follower position regressed after heal: %s -> %s", lastPos, p)
	}
	diffStores(t, dumpStore(db.Internal().Store()), dumpStore(rep.f.Store()))
}

// TestFollowerResumeFromStateDir verifies follower-side checkpointing:
// a restarted follower resumes from its own persisted snapshot and
// replays only the log suffix written after it, not the whole
// post-snapshot log.
func TestFollowerResumeFromStateDir(t *testing.T) {
	dir, state := t.TempDir(), t.TempDir()
	db, err := OpenErr(Options{Workers: 2, RedoLog: dir})
	if err != nil {
		t.Fatal(err)
	}
	const pre, post = 500, 50
	rep, err := OpenFollower(dir, FollowerOptions{
		PollInterval:    200 * time.Microsecond,
		StateDir:        state,
		CheckpointEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pre; i++ {
		k, n := fmt.Sprintf("pre:%d", i), int64(i)
		if err := db.Exec(func(tx Tx) error { return tx.PutInt(k, n) }); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, rep, db.LogPosition())
	// Wait for at least one follower checkpoint (written on the poll
	// after the threshold crosses).
	ckptDeadline := time.Now().Add(10 * time.Second)
	for rep.Stats().Checkpoints == 0 {
		if time.Now().After(ckptDeadline) {
			t.Fatalf("no follower checkpoint after %d records", pre)
		}
		time.Sleep(time.Millisecond)
	}
	rep.Close()

	for i := 0; i < post; i++ {
		k, n := fmt.Sprintf("post:%d", i), int64(i)
		if err := db.Exec(func(tx Tx) error { return tx.PutInt(k, n) }); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	rep2, err := OpenFollower(dir, FollowerOptions{
		PollInterval:    200 * time.Microsecond,
		StateDir:        state,
		CheckpointEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Close()
	waitCaughtUp(t, rep2, db.LogPosition())
	s := rep2.Stats()
	if !s.Resumed {
		t.Fatal("follower did not resume from its state directory")
	}
	if s.SnapshotEntries == 0 {
		t.Fatal("resumed follower loaded no snapshot entries")
	}
	// Bounded suffix: the resumed follower must not have re-applied the
	// whole log — only what followed its last checkpoint.
	if s.Records >= pre {
		t.Fatalf("resumed follower re-applied %d records; want a bounded suffix < %d", s.Records, pre)
	}
	// And the applied watermark must account for every primary record.
	if s.AppliedLSN != db.DurableLSN() {
		t.Fatalf("applied watermark %d, primary logged %d", s.AppliedLSN, db.DurableLSN())
	}
	diffStores(t, dumpStore(db.Internal().Store()), dumpStore(rep2.f.Store()))
}
